#include "rdma/rdma.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "fault/fault.hpp"

namespace nvmeshare::rdma {

Network::Stats::Stats()
    : sends("nvmeshare.rdma.sends"),
      rdma_writes("nvmeshare.rdma.rdma_writes"),
      rdma_reads("nvmeshare.rdma.rdma_reads"),
      bytes_moved("nvmeshare.rdma.bytes_moved"),
      rnr_drops("nvmeshare.rdma.rnr_drops"),
      protection_errors("nvmeshare.rdma.protection_errors") {}

// --- Context -------------------------------------------------------------------

Status Context::register_mr(std::uint64_t addr, std::uint64_t len) {
  if (len == 0) return Status(Errc::invalid_argument, "empty MR");
  mrs_.emplace_back(addr, len);
  return Status::ok();
}

Status Context::deregister_mr(std::uint64_t addr) {
  auto it = std::find_if(mrs_.begin(), mrs_.end(),
                         [addr](const auto& mr) { return mr.first == addr; });
  if (it == mrs_.end()) return Status(Errc::not_found, "no MR at address");
  mrs_.erase(it);
  return Status::ok();
}

bool Context::covered(std::uint64_t addr, std::uint64_t len) const {
  for (const auto& [base, size] : mrs_) {
    if (addr >= base && addr + len <= base + size) return true;
  }
  return false;
}

// --- Network -------------------------------------------------------------------

sim::Duration Network::message_latency(std::uint64_t bytes) const {
  return cfg_.per_message_ns + cfg_.nic_tx_ns + cfg_.propagation_ns + cfg_.switch_ns +
         cfg_.nic_rx_ns +
         static_cast<sim::Duration>(static_cast<double>(bytes) / cfg_.bytes_per_ns);
}

std::pair<QueuePair*, QueuePair*> Network::create_qp_pair(Context& a, CompletionQueue& cq_a,
                                                          Context& b, CompletionQueue& cq_b) {
  auto qa = std::make_unique<QueuePair>();
  auto qb = std::make_unique<QueuePair>();
  qa->ctx_ = &a;
  qa->cq_ = &cq_a;
  qa->network_ = this;
  qb->ctx_ = &b;
  qb->cq_ = &cq_b;
  qb->network_ = this;
  qa->peer_ = qb.get();
  qb->peer_ = qa.get();
  QueuePair* pa = qa.get();
  QueuePair* pb = qb.get();
  qps_.push_back(std::move(qa));
  qps_.push_back(std::move(qb));
  return {pa, pb};
}

// --- QueuePair -----------------------------------------------------------------

sim::Time QueuePair::schedule_delivery(sim::Duration latency, std::uint64_t bytes) {
  sim::Engine& engine = network_->engine();
  const NetworkConfig& cfg = network_->config();
  const auto gap = static_cast<sim::Duration>(static_cast<double>(bytes) / cfg.bytes_per_ns) +
                   cfg.per_message_ns;
  const sim::Time at = std::max(engine.now() + latency, out_floor_ + gap);
  out_floor_ = at;
  return at;
}

Status QueuePair::post_recv(std::uint64_t wr_id, std::uint64_t addr, std::uint32_t len) {
  if (!ctx_->covered(addr, len)) {
    ++network_->stats_.protection_errors;
    return Status(Errc::permission_denied, "recv buffer not in a registered MR");
  }
  recvs_.push_back(RecvBuffer{wr_id, addr, len});
  return Status::ok();
}

Status QueuePair::post_send(std::uint64_t wr_id, std::uint64_t addr, std::uint32_t len) {
  if (!ctx_->covered(addr, len)) {
    ++network_->stats_.protection_errors;
    return Status(Errc::permission_denied, "send buffer not in a registered MR");
  }
  // Fault injection: a lost SEND leaves the wire silently — the post
  // succeeds but no delivery is scheduled and neither side ever sees a
  // completion, exactly like a wire loss the RC retry budget gave up on.
  if (fault::enabled() && fault::Injector::global().on_capsule_send()) {
    return Status::ok();
  }
  Network& net = *network_;
  ++net.stats_.sends;
  net.stats_.bytes_moved += len;

  // Snapshot the payload at post time (the HCA DMAs it out immediately;
  // modifying the buffer afterwards must not change the message).
  Bytes payload(len);
  if (Status st = net.fabric_.host_dram(node()).read(addr, payload); !st) return st;

  const sim::Time deliver_at = schedule_delivery(net.message_latency(len), len);
  QueuePair* dst = peer_;
  net.engine().at(deliver_at, [this, dst, wr_id, payload = std::move(payload), len]() mutable {
    Network& n = *network_;
    if (dst->recvs_.empty()) {
      // Receiver-not-ready: in RC this would retry and eventually error the
      // QP; we complete both sides with an error immediately.
      ++n.stats_.rnr_drops;
      cq_->queue_.push(WorkCompletion{WcOpcode::send,
                                      Status(Errc::unavailable, "RNR: no posted recv"), wr_id,
                                      len});
      return;
    }
    RecvBuffer rb = dst->recvs_.front();
    dst->recvs_.pop_front();
    if (len > rb.len) {
      dst->cq_->queue_.push(WorkCompletion{
          WcOpcode::recv, Status(Errc::out_of_range, "message exceeds recv buffer"), rb.wr_id,
          len});
      cq_->queue_.push(WorkCompletion{WcOpcode::send,
                                      Status(Errc::out_of_range, "recv buffer too small"),
                                      wr_id, len});
      return;
    }
    (void)n.fabric_.host_dram(dst->node()).write(rb.addr, payload);
    dst->cq_->queue_.push(WorkCompletion{WcOpcode::recv, Status::ok(), rb.wr_id, len});
    // Sender's completion: generated by the remote ACK, so it trails the
    // delivery by roughly one header traversal.
    n.engine().after(n.message_latency(0) / 2, [this, wr_id, len]() {
      cq_->queue_.push(WorkCompletion{WcOpcode::send, Status::ok(), wr_id, len});
    });
  });
  return Status::ok();
}

Status QueuePair::rdma_write(std::uint64_t wr_id, std::uint64_t addr, std::uint32_t len,
                             std::uint64_t remote_addr) {
  if (!ctx_->covered(addr, len)) {
    ++network_->stats_.protection_errors;
    return Status(Errc::permission_denied, "local buffer not in a registered MR");
  }
  Network& net = *network_;
  if (!peer_->ctx_->covered(remote_addr, len)) {
    ++net.stats_.protection_errors;
    return Status(Errc::permission_denied, "remote address not in a registered MR");
  }
  ++net.stats_.rdma_writes;
  net.stats_.bytes_moved += len;

  Bytes payload(len);
  if (Status st = net.fabric_.host_dram(node()).read(addr, payload); !st) return st;

  const sim::Time deliver_at = schedule_delivery(net.message_latency(len), len);
  QueuePair* dst = peer_;
  net.engine().at(deliver_at, [this, dst, wr_id, payload = std::move(payload), remote_addr,
                               len]() mutable {
    Network& n = *network_;
    (void)n.fabric_.host_dram(dst->node()).write(remote_addr, payload);
    n.engine().after(n.message_latency(0) / 2, [this, wr_id, len]() {
      cq_->queue_.push(WorkCompletion{WcOpcode::rdma_write, Status::ok(), wr_id, len});
    });
  });
  return Status::ok();
}

Status QueuePair::rdma_read(std::uint64_t wr_id, std::uint64_t addr, std::uint32_t len,
                            std::uint64_t remote_addr) {
  if (!ctx_->covered(addr, len)) {
    ++network_->stats_.protection_errors;
    return Status(Errc::permission_denied, "local buffer not in a registered MR");
  }
  Network& net = *network_;
  if (!peer_->ctx_->covered(remote_addr, len)) {
    ++net.stats_.protection_errors;
    return Status(Errc::permission_denied, "remote address not in a registered MR");
  }
  ++net.stats_.rdma_reads;
  net.stats_.bytes_moved += len;

  // Request travels as a header-only message; the peer HCA DMAs the data
  // out of memory (no software) and the response carries the payload back.
  const sim::Time request_at = schedule_delivery(net.message_latency(0), 0);
  QueuePair* dst = peer_;
  net.engine().at(request_at, [this, dst, wr_id, addr, len, remote_addr]() {
    Network& n = *network_;
    Bytes payload(len);
    (void)n.fabric_.host_dram(dst->node()).read(remote_addr, payload);
    // The response travels the peer->us direction and obeys its FIFO.
    const sim::Time response_at = dst->schedule_delivery(n.message_latency(len), len);
    n.engine().at(response_at, [this, wr_id, addr, len, payload = std::move(payload)]() mutable {
      Network& nn = *network_;
      (void)nn.fabric_.host_dram(node()).write(addr, payload);
      cq_->queue_.push(WorkCompletion{WcOpcode::rdma_read, Status::ok(), wr_id, len});
    });
  });
  return Status::ok();
}

}  // namespace nvmeshare::rdma
