// InfiniBand-verbs-style RDMA model (ConnectX-5-class), the transport under
// the NVMe-oF baseline.
//
// Modeled mechanics (the ones the paper's comparison depends on):
//  * reliable-connected queue pairs with SEND/RECV, RDMA WRITE, RDMA READ;
//  * one-sided operations move bytes directly between registered memory
//    regions with no remote software, but every message still pays NIC
//    processing on both ends plus switch/propagation/serialization time;
//  * RECVs must be pre-posted; completions are delivered to completion
//    queues the application polls (or sleeps on, modeling CQ interrupts).
//
// Memory is addressed by physical DRAM addresses of the owning host and
// must be covered by a registered MR — accesses outside registered regions
// complete with an error, like a real HCA's protection checks.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "fabric/substrate.hpp"
#include "sim/task.hpp"

namespace nvmeshare::rdma {

using NodeId = fabric::HostId;

struct NetworkConfig {
  sim::Duration nic_tx_ns = 1000;      ///< send-side WQE fetch, processing, PCIe DMA
  sim::Duration nic_rx_ns = 1000;      ///< receive-side processing + memory DMA
  sim::Duration switch_ns = 300;       ///< IB switch forwarding
  sim::Duration propagation_ns = 100;  ///< cables, both segments combined
  sim::Duration per_message_ns = 150;  ///< doorbell + WQE build
  double bytes_per_ns = 12.5;          ///< 100 Gb/s payload bandwidth
};

enum class WcOpcode : std::uint8_t { send, recv, rdma_write, rdma_read };

struct WorkCompletion {
  WcOpcode opcode = WcOpcode::send;
  Status status;
  std::uint64_t wr_id = 0;
  std::uint32_t byte_len = 0;
};

class CompletionQueue {
 public:
  explicit CompletionQueue(sim::Engine& engine) : queue_(engine) {}

  [[nodiscard]] std::optional<WorkCompletion> poll() { return queue_.try_pop(); }
  /// Sleep until a completion arrives (models a CQ event / interrupt).
  [[nodiscard]] auto pop() { return queue_.pop(); }
  [[nodiscard]] auto pop_for(sim::Duration timeout) { return queue_.pop_for(timeout); }
  [[nodiscard]] std::size_t depth() const noexcept { return queue_.size(); }

 private:
  friend class QueuePair;
  sim::Mailbox<WorkCompletion> queue_;
};

class Network;

/// Per-host verbs context: owns the MR table.
class Context {
 public:
  Context(Network& network, NodeId node) : network_(network), node_(node) {}

  [[nodiscard]] NodeId node() const noexcept { return node_; }

  /// Register [addr, addr+len) of this host's DRAM for RDMA access.
  Status register_mr(std::uint64_t addr, std::uint64_t len);
  Status deregister_mr(std::uint64_t addr);
  [[nodiscard]] bool covered(std::uint64_t addr, std::uint64_t len) const;

 private:
  friend class QueuePair;
  Network& network_;
  NodeId node_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> mrs_;  // addr, len
};

/// One side of a reliable-connected queue pair.
class QueuePair {
 public:
  /// Post a receive buffer (local DRAM, must be registered).
  Status post_recv(std::uint64_t wr_id, std::uint64_t addr, std::uint32_t len);

  /// SEND: deliver `len` bytes from local `addr` into the peer's next
  /// posted RECV buffer. Completion on both sides.
  Status post_send(std::uint64_t wr_id, std::uint64_t addr, std::uint32_t len);

  /// RDMA WRITE: one-sided write of local [addr,len) to peer remote_addr.
  /// Completion only on the sender.
  Status rdma_write(std::uint64_t wr_id, std::uint64_t addr, std::uint32_t len,
                    std::uint64_t remote_addr);

  /// RDMA READ: one-sided read of peer [remote_addr,len) into local addr.
  Status rdma_read(std::uint64_t wr_id, std::uint64_t addr, std::uint32_t len,
                   std::uint64_t remote_addr);

  [[nodiscard]] NodeId node() const noexcept { return ctx_->node(); }
  [[nodiscard]] QueuePair* peer() const noexcept { return peer_; }
  [[nodiscard]] std::size_t posted_recvs() const noexcept { return recvs_.size(); }

 private:
  friend class Network;
  struct RecvBuffer {
    std::uint64_t wr_id;
    std::uint64_t addr;
    std::uint32_t len;
  };

  /// Reliable-connected FIFO: messages on one QP direction are delivered
  /// in posting order, so a small response can never overtake a large
  /// RDMA WRITE issued before it. Messages pipeline: a successor lands one
  /// wire-serialization gap after its predecessor, not one full latency.
  [[nodiscard]] sim::Time schedule_delivery(sim::Duration latency, std::uint64_t bytes);

  Context* ctx_ = nullptr;
  CompletionQueue* cq_ = nullptr;
  QueuePair* peer_ = nullptr;
  Network* network_ = nullptr;
  std::deque<RecvBuffer> recvs_;
  sim::Time out_floor_ = 0;  ///< earliest delivery time of the next outbound message
};

class Network {
 public:
  Network(fabric::Substrate& fabric, NetworkConfig cfg) : fabric_(fabric), cfg_(cfg) {}

  [[nodiscard]] sim::Engine& engine() noexcept { return fabric_.engine(); }
  [[nodiscard]] fabric::Substrate& fabric() noexcept { return fabric_; }
  [[nodiscard]] const NetworkConfig& config() const noexcept { return cfg_; }

  /// One-way latency of a message carrying `bytes` of payload.
  [[nodiscard]] sim::Duration message_latency(std::uint64_t bytes) const;

  /// Create a connected queue pair between two contexts. Both endpoints
  /// share the fate of the returned objects (owned by the Network).
  std::pair<QueuePair*, QueuePair*> create_qp_pair(Context& a, CompletionQueue& cq_a,
                                                   Context& b, CompletionQueue& cq_b);

  /// Network-wide counters, also registered as `nvmeshare.rdma.*`.
  struct Stats {
    Stats();
    obs::Counter sends;
    obs::Counter rdma_writes;
    obs::Counter rdma_reads;
    obs::Counter bytes_moved;
    obs::Counter rnr_drops;  ///< SENDs that found no posted RECV
    obs::Counter protection_errors;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  friend class QueuePair;
  fabric::Substrate& fabric_;
  NetworkConfig cfg_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
  Stats stats_;
};

}  // namespace nvmeshare::rdma
