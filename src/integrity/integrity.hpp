// End-to-end data integrity: T10-PI-style protection information and the
// checksums that guard it.
//
// NVMe's end-to-end data protection attaches an 8-byte DIF tuple to every
// logical block: a CRC-16/T10DIF guard over the block data, a 16-bit
// application tag, and a 32-bit reference tag (the low bits of the LBA for
// Type 1 protection). The controller generates or verifies the tuple per
// the command's PRACT/PRCHK bits and fails reads/writes with the spec's
// Guard / App Tag / Ref Tag Check Error statuses; hosts may additionally
// compute the same tuple over their own buffers to close the last
// DRAM-to-DRAM gap. NVMe-oF capsules use CRC-32C as a data digest, exactly
// like the transport spec's DDGST.
//
// This module is a leaf: pure functions plus a lazily-constructed counter
// block. The counters only register with the metrics registry once
// something actually uses integrity (first stats() call), so integrity-off
// runs keep byte-identical metrics snapshots.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "obs/metrics.hpp"

namespace nvmeshare::integrity {

/// CRC-16/T10DIF (poly 0x8BB7, init 0, no reflection) — the DIF guard.
[[nodiscard]] std::uint16_t crc16_t10dif(ConstByteSpan data) noexcept;

/// CRC-32C (Castagnoli, reflected, init/xorout 0xFFFFFFFF) — the NVMe-oF
/// data digest.
[[nodiscard]] std::uint32_t crc32c(ConstByteSpan data) noexcept;

/// Per-block protection information (the 8-byte DIF tuple).
struct ProtectionInfo {
  std::uint16_t guard = 0;    ///< CRC-16/T10DIF over the block data
  std::uint16_t app_tag = 0;  ///< opaque to the device
  std::uint32_t ref_tag = 0;  ///< Type 1: low 32 bits of the LBA

  friend bool operator==(const ProtectionInfo&, const ProtectionInfo&) = default;
};

/// Application tag this stack writes (no multi-tenant tagging yet).
inline constexpr std::uint16_t kDefaultAppTag = 0x5ea1;

/// Generate Type-1 PI for one block of data at `lba`.
[[nodiscard]] ProtectionInfo generate_pi(ConstByteSpan block, std::uint64_t lba,
                                         std::uint16_t app_tag = kDefaultAppTag) noexcept;

/// Outcome of checking stored/received PI against data, ordered by the
/// NVMe spec's check precedence (guard, then app tag, then ref tag).
enum class PiCheck : std::uint8_t {
  ok,
  guard_mismatch,    ///< -> Guard Check Error (SCT 2h / SC 82h)
  app_tag_mismatch,  ///< -> Application Tag Check Error (SCT 2h / SC 83h)
  ref_tag_mismatch,  ///< -> Reference Tag Check Error (SCT 2h / SC 84h)
};

[[nodiscard]] const char* pi_check_name(PiCheck check) noexcept;

/// Which of the three fields to check (the command's PRCHK bits).
struct PiCheckMask {
  bool guard = true;
  bool app_tag = true;
  bool ref_tag = true;
};

/// Verify `pi` against one block of data at `lba`. Checks run in spec
/// precedence order; disabled checks (mask) are skipped.
[[nodiscard]] PiCheck verify_pi(const ProtectionInfo& pi, ConstByteSpan block,
                                std::uint64_t lba, PiCheckMask mask = {},
                                std::uint16_t app_tag = kDefaultAppTag) noexcept;

/// Process-wide integrity counters, registered as `nvmeshare.integrity.*`.
/// Lazily constructed: call stats() only on paths where integrity (or a
/// corruption fault) is actually in play, never unconditionally — the first
/// call registers the counters, and fault-free integrity-off runs must keep
/// their metrics snapshots byte-identical to before this module existed.
struct Stats {
  Stats();
  obs::Counter pi_generated;            ///< blocks that got a fresh tuple
  obs::Counter pi_verified;             ///< blocks checked clean
  obs::Counter guard_errors;            ///< controller-side guard mismatches
  obs::Counter app_tag_errors;
  obs::Counter ref_tag_errors;
  obs::Counter client_verify_failures;  ///< host-side post-DMA check failures
  obs::Counter digests_generated;       ///< NVMe-oF capsule payload digests
  obs::Counter digest_errors;           ///< NVMe-oF digest mismatches
  obs::Counter blocks_scrubbed;         ///< blocks walked by the scrubber
  obs::Counter scrub_errors;            ///< stored-guard mismatches found
};

[[nodiscard]] Stats& stats();

}  // namespace nvmeshare::integrity
