#include "integrity/integrity.hpp"

#include <array>

namespace nvmeshare::integrity {

namespace {

/// CRC-16/T10DIF table, poly 0x8BB7, MSB-first.
constexpr std::array<std::uint16_t, 256> make_crc16_table() {
  std::array<std::uint16_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint16_t crc = static_cast<std::uint16_t>(i << 8);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000) != 0 ? static_cast<std::uint16_t>((crc << 1) ^ 0x8BB7)
                                : static_cast<std::uint16_t>(crc << 1);
    }
    table[i] = crc;
  }
  return table;
}

/// CRC-32C table, reflected poly 0x82F63B78, LSB-first.
constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) != 0 ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kCrc16Table = make_crc16_table();
constexpr auto kCrc32cTable = make_crc32c_table();

}  // namespace

std::uint16_t crc16_t10dif(ConstByteSpan data) noexcept {
  std::uint16_t crc = 0;
  for (const std::byte b : data) {
    const auto idx = static_cast<std::uint8_t>((crc >> 8) ^ std::to_integer<std::uint8_t>(b));
    crc = static_cast<std::uint16_t>((crc << 8) ^ kCrc16Table[idx]);
  }
  return crc;
}

std::uint32_t crc32c(ConstByteSpan data) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::byte b : data) {
    const auto idx =
        static_cast<std::uint8_t>((crc ^ std::to_integer<std::uint8_t>(b)) & 0xFF);
    crc = (crc >> 8) ^ kCrc32cTable[idx];
  }
  return crc ^ 0xFFFFFFFFu;
}

ProtectionInfo generate_pi(ConstByteSpan block, std::uint64_t lba,
                           std::uint16_t app_tag) noexcept {
  ProtectionInfo pi;
  pi.guard = crc16_t10dif(block);
  pi.app_tag = app_tag;
  pi.ref_tag = static_cast<std::uint32_t>(lba);
  return pi;
}

const char* pi_check_name(PiCheck check) noexcept {
  switch (check) {
    case PiCheck::ok: return "ok";
    case PiCheck::guard_mismatch: return "guard_mismatch";
    case PiCheck::app_tag_mismatch: return "app_tag_mismatch";
    case PiCheck::ref_tag_mismatch: return "ref_tag_mismatch";
  }
  return "?";
}

PiCheck verify_pi(const ProtectionInfo& pi, ConstByteSpan block, std::uint64_t lba,
                  PiCheckMask mask, std::uint16_t app_tag) noexcept {
  if (mask.guard && pi.guard != crc16_t10dif(block)) return PiCheck::guard_mismatch;
  if (mask.app_tag && pi.app_tag != app_tag) return PiCheck::app_tag_mismatch;
  if (mask.ref_tag && pi.ref_tag != static_cast<std::uint32_t>(lba)) {
    return PiCheck::ref_tag_mismatch;
  }
  return PiCheck::ok;
}

Stats::Stats()
    : pi_generated("nvmeshare.integrity.pi_generated"),
      pi_verified("nvmeshare.integrity.pi_verified"),
      guard_errors("nvmeshare.integrity.guard_errors"),
      app_tag_errors("nvmeshare.integrity.app_tag_errors"),
      ref_tag_errors("nvmeshare.integrity.ref_tag_errors"),
      client_verify_failures("nvmeshare.integrity.client_verify_failures"),
      digests_generated("nvmeshare.integrity.digests_generated"),
      digest_errors("nvmeshare.integrity.digest_errors"),
      blocks_scrubbed("nvmeshare.integrity.blocks_scrubbed"),
      scrub_errors("nvmeshare.integrity.scrub_errors") {}

Stats& stats() {
  static Stats instance;
  return instance;
}

}  // namespace nvmeshare::integrity
