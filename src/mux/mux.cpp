#include "mux/mux.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace nvmeshare::mux {

QpMultiplexer::Stats::Stats()
    : tenants("nvmeshare.mux.tenants"),
      shares_attached("nvmeshare.mux.shares_attached"),
      staged_cmds("nvmeshare.mux.staged_cmds"),
      dispatched_cmds("nvmeshare.mux.dispatched_cmds"),
      completed_cmds("nvmeshare.mux.completed_cmds"),
      drr_rounds("nvmeshare.mux.drr_rounds"),
      throttle_ns("nvmeshare.mux.throttle_ns"),
      deferred_cmds("nvmeshare.mux.deferred_cmds"),
      aborted_cmds("nvmeshare.mux.aborted_cmds") {}

// --- token bucket -------------------------------------------------------------

void QpMultiplexer::TokenBucket::arm(std::uint64_t r, std::uint64_t burst) {
  rate = r;
  capacity = static_cast<std::int64_t>(burst) * kScale;
  scaled = capacity;  // the burst allowance is available up front
}

void QpMultiplexer::TokenBucket::refill(sim::Time now) {
  const sim::Duration elapsed = now - last;
  last = now;
  if (rate == 0 || elapsed <= 0) return;
  const auto r = static_cast<std::int64_t>(rate);
  // Ceil the full-bucket horizon (see IoEngine::TokenBucket::refill): a
  // floor here would credit a fraction of a token early and forgive any
  // outstanding deficit. The clamp also bounds `elapsed * r`.
  const std::int64_t deficit = capacity - scaled;
  if (elapsed >= (deficit + r - 1) / r) {
    scaled = capacity;
    return;
  }
  scaled += elapsed * r;
}

sim::Duration QpMultiplexer::TokenBucket::charge(sim::Time now, std::uint64_t tokens) {
  if (rate == 0) return 0;
  refill(now);
  scaled -= static_cast<std::int64_t>(tokens) * kScale;
  if (scaled >= 0) return 0;
  const auto r = static_cast<std::int64_t>(rate);
  return (-scaled + r - 1) / r;  // ceil: never wake a fraction of a token early
}

// --- lifecycle ----------------------------------------------------------------

QpMultiplexer::QpMultiplexer(sim::Engine& engine, DispatchFn dispatch,
                             std::shared_ptr<bool> stop, Config cfg)
    : engine_(engine),
      dispatch_(std::move(dispatch)),
      stop_(std::move(stop)),
      cfg_(cfg),
      kick_(engine) {
  cfg_.quantum_blocks = std::max<std::uint32_t>(cfg_.quantum_blocks, 1);
}

QpMultiplexer::~QpMultiplexer() {
  // A parked scheduler (or an in-flight dispatch) wakes, observes the
  // cleared alive flag and exits without touching this object; staged work
  // it will never drain is resolved as aborted here so no submitter hangs.
  *alive_ = false;
  kick_.set();
  for (auto& [id, t] : tenants_) {
    for (auto& staged : t->ring) resolve_aborted(staged);
    t->ring.clear();
  }
}

void QpMultiplexer::kick() { kick_.set(); }

const ShareGrant* QpMultiplexer::grant(std::uint32_t tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second->grant;
}

std::size_t QpMultiplexer::tenant_backlog(std::uint32_t tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second->ring.size() + it->second->inflight;
}

Status QpMultiplexer::attach_tenant(const ShareGrant& grant) {
  if (grant.range.count() == 0) {
    return Status(Errc::invalid_argument, "share grant has an empty CID range");
  }
  if (grant.weight == 0) {
    return Status(Errc::invalid_argument, "share grant weight must be positive");
  }
  if (tenants_.contains(grant.tenant)) {
    return Status(Errc::already_exists, "tenant already attached");
  }
  for (const auto& [id, t] : tenants_) {
    if (t->grant.range.overlaps(grant.range)) {
      return Status(Errc::invalid_argument, "share CID range overlaps an attached tenant");
    }
  }
  auto tenant = std::make_unique<Tenant>(grant);
  tenant->cmd_bucket.arm(grant.qos_iops, cfg_.qos_burst_cmds);
  tenant->byte_bucket.arm(grant.qos_bytes_per_s, cfg_.qos_burst_bytes);
  tenant->cmd_bucket.last = engine_.now();
  tenant->byte_bucket.last = engine_.now();
  tenants_.emplace(grant.tenant, std::move(tenant));
  order_.push_back(grant.tenant);
  ++stats_.shares_attached;
  stats_.tenants.set(static_cast<double>(order_.size()));
  return Status::ok();
}

Status QpMultiplexer::detach_tenant(std::uint32_t tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return Status(Errc::not_found, "no such tenant");
  if (!it->second->ring.empty() || it->second->inflight != 0) {
    return Status(Errc::unavailable, "tenant has staged or in-flight commands");
  }
  tenants_.erase(it);
  order_.erase(std::find(order_.begin(), order_.end(), tenant));
  stats_.tenants.set(static_cast<double>(order_.size()));
  return Status::ok();
}

// --- submission ---------------------------------------------------------------

void QpMultiplexer::resolve_aborted(Staged& staged) {
  ++stats_.aborted_cmds;
  staged.promise.set(
      block::Completion{Status(Errc::aborted, "multiplexer stopped"), engine_.now() - staged.start});
}

sim::Future<block::Completion> QpMultiplexer::submit(std::uint32_t tenant,
                                                     const block::Request& request) {
  sim::Promise<block::Completion> promise(engine_);
  auto future = promise.future();
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    promise.set(block::Completion{Status(Errc::not_found, "no share for this tenant"), 0});
    return future;
  }
  if (*stop_) {
    promise.set(block::Completion{Status(Errc::aborted, "multiplexer stopped"), 0});
    return future;
  }
  it->second->ring.push_back(Staged{request, engine_.now(), std::move(promise)});
  ++stats_.staged_cmds;
  if (!scheduler_running_) {
    scheduler_running_ = true;
    scheduler_task(stop_);
  }
  kick_.set();
  return future;
}

// --- scheduling ---------------------------------------------------------------

// Deficit round robin over the attach-ordered tenant list. Each pass adds
// quantum * weight to every backlogged tenant with window room and dequeues
// while the deficit covers the head request's cost (max(1, nblocks) — byte-
// aware fairness without a divider on the hot path). A tenant whose ring
// drains forfeits its residue, the classic DRR rule that keeps latent
// credit from accumulating. The in-flight window is the share's CID-range
// size, so a tenant can never occupy more of the shared ring than its
// grant; the ranged push underneath would refuse anyway (counted
// backpressure), this just avoids pointless retries.
sim::Task QpMultiplexer::scheduler_task(std::shared_ptr<bool> stop) {
  const std::shared_ptr<bool> alive = alive_;
  for (;;) {
    if (!*alive) co_return;  // multiplexer destroyed while we were parked
    if (*stop) break;
    bool progressed = false;
    bool starved = false;  // backlogged + window room, but deficit short
    for (std::size_t i = 0; i < order_.size(); ++i) {
      Tenant& t = *tenants_.at(order_[i]);
      if (t.ring.empty()) {
        t.deficit = 0;
        continue;
      }
      if (t.inflight >= t.grant.range.count()) continue;  // window full: kick on completion
      t.deficit += static_cast<std::int64_t>(cfg_.quantum_blocks) * t.grant.weight;
      while (!t.ring.empty() && t.inflight < t.grant.range.count()) {
        const auto cost = std::max<std::int64_t>(1, t.ring.front().request.nblocks);
        if (t.deficit < cost) {
          starved = true;
          break;
        }
        t.deficit -= cost;
        Staged staged = std::move(t.ring.front());
        t.ring.pop_front();
        ++t.inflight;
        ++stats_.dispatched_cmds;
        dispatch_task(t, std::move(staged), stop);
        progressed = true;
      }
      if (t.ring.empty()) t.deficit = 0;
    }
    ++stats_.drr_rounds;
    if (progressed || starved) {
      // Yield through the engine queue so dispatches (and their
      // completions) interleave; a starved tenant earns quantum next pass.
      co_await sim::yield_now(engine_);
      continue;
    }
    // Nothing dispatchable: rings empty, or every backlogged tenant's
    // window is full. Park until a submit or a completion kicks us.
    kick_.reset();
    (void)co_await kick_.wait();
  }
  // Stop: fail whatever is still staged so no submitter hangs.
  for (auto& id : order_) {
    Tenant& t = *tenants_.at(id);
    for (auto& staged : t.ring) resolve_aborted(staged);
    t.ring.clear();
  }
  scheduler_running_ = false;
}

sim::Task QpMultiplexer::dispatch_task(Tenant& t, Staged staged, std::shared_ptr<bool> stop) {
  const std::shared_ptr<bool> alive = alive_;
  sim::Engine& eng = engine_;
  // QoS pacing: charge both buckets up front and sleep off the deficit, the
  // same serialization the engine pacer uses — each dispatch sees the debt
  // left by the previous one and queues behind it.
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(staged.request.nblocks) * cfg_.block_size;
  const sim::Duration stall = std::max(t.cmd_bucket.charge(engine_.now(), 1),
                                       t.byte_bucket.charge(engine_.now(), bytes));
  if (stall > 0) {
    ++stats_.deferred_cmds;
    stats_.throttle_ns += static_cast<std::uint64_t>(stall);
    co_await sim::delay(eng, stall);
  }
  if (!*alive) {  // destroyed during the stall: resolve, touch nothing else
    staged.promise.set(
        block::Completion{Status(Errc::aborted, "multiplexer stopped"), eng.now() - staged.start});
    co_return;
  }
  if (*stop) {
    --t.inflight;
    resolve_aborted(staged);
    co_return;
  }
  block::Completion done = co_await dispatch_(staged.request, t.grant.range);
  if (!*alive) {  // destroyed while the request was on the wire
    staged.promise.set(std::move(done));
    co_return;
  }
  --t.inflight;
  ++stats_.completed_cmds;
  // Report the tenant-perceived latency: staging wait + QoS stall + wire.
  done.latency_ns = engine_.now() - staged.start;
  kick_.set();  // window room freed: the scheduler may dequeue again
  staged.promise.set(std::move(done));
}

// --- TenantDevice -------------------------------------------------------------

TenantDevice::TenantDevice(QpMultiplexer& mux, block::BlockDevice& underlying,
                           std::uint32_t tenant)
    : mux_(mux), underlying_(underlying), tenant_(tenant) {
  name_ = std::string(underlying.name()) + "-t" + std::to_string(tenant);
}

std::uint32_t TenantDevice::max_queue_depth() const {
  const ShareGrant* g = mux_.grant(tenant_);
  return g == nullptr ? 1 : g->range.count();
}

sim::Future<block::Completion> TenantDevice::submit(const block::Request& request) {
  return mux_.submit(tenant_, request);
}

}  // namespace nvmeshare::mux
