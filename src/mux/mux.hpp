// Tenant multiplexing over one physical NVMe queue pair (ROADMAP item 2).
//
// The paper's sharing model is one queue pair per borrowing host, which caps
// the cluster at 31 hosts (the controller exposes 32 pairs). Following the
// mediated-queue idea of "Software-based NVMe Virtualization with I/O Queues
// Passthrough" (PAPERS.md), this layer lets many lightweight *tenants* —
// containers, VMs, users on the borrowing host — share that host's pair:
//
//  * each tenant holds a manager-granted share carrying a disjoint CID
//    sub-range of the pair's command-identifier space (nvme::CidRange), so
//    a completion routes back to its owner by CID alone and one tenant can
//    never occupy another's submission slots;
//  * submissions stage in per-tenant rings and a deficit-round-robin
//    scheduler dequeues them fairly (byte-aware: the deficit is spent in
//    blocks) before SQE placement;
//  * per-tenant token buckets (same fixed-point scheme as the I/O engine's
//    pacer) enforce the share's QoS grant, so a noisy tenant throttles
//    itself instead of its neighbours.
//
// The multiplexer is transport-agnostic: it hands each dequeued request to
// a DispatchFn the owning driver provides (driver::Client routes it through
// its normal engine path, pinned to the tenant's CID range). TenantDevice
// wraps one tenant as a block::BlockDevice so unmodified workloads run per
// tenant.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "block/block.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "nvme/queue.hpp"
#include "obs/metrics.hpp"
#include "sim/task.hpp"

namespace nvmeshare::mux {

/// One tenant's manager-granted slice of a physical queue pair: a disjoint
/// CID sub-range (also the tenant's in-flight window), a DRR weight, and
/// the QoS budgets the manager's policy table actually granted.
struct ShareGrant {
  std::uint32_t tenant = 0;
  std::uint16_t qid = 0;
  nvme::CidRange range;
  std::uint16_t weight = 1;                ///< DRR quantum multiplier
  std::uint32_t qos_iops = 0;              ///< granted; 0 = unpaced
  std::uint32_t qos_bytes_per_s = 0;       ///< granted; 0 = unpaced
};

/// Fair multiplexer for one shared queue pair. Single simulation thread,
/// deterministic: tenants are served in attach order, all wake-ups go
/// through the engine queue.
class QpMultiplexer {
 public:
  /// How a dequeued request reaches the wire: the owning driver submits it
  /// through its normal data path with CID allocation pinned to `range`.
  using DispatchFn =
      std::function<sim::Future<block::Completion>(const block::Request&, const nvme::CidRange&)>;

  struct Config {
    /// DRR quantum in blocks added per round to each backlogged tenant
    /// (scaled by the share's weight). A request costs max(1, nblocks).
    std::uint32_t quantum_blocks = 8;
    std::uint32_t block_size = 512;            ///< for byte-rate pacing
    std::uint32_t qos_burst_cmds = 16;         ///< command-bucket capacity
    std::uint64_t qos_burst_bytes = 256 * KiB; ///< byte-bucket capacity
  };

  QpMultiplexer(sim::Engine& engine, DispatchFn dispatch, std::shared_ptr<bool> stop,
                Config cfg);
  QpMultiplexer(const QpMultiplexer&) = delete;
  QpMultiplexer& operator=(const QpMultiplexer&) = delete;
  ~QpMultiplexer();

  /// Register a granted share. Fails on a duplicate tenant id, an empty
  /// range, or a range overlapping an already-attached share (the manager
  /// guarantees disjointness; this guards against a buggy caller).
  Status attach_tenant(const ShareGrant& grant);

  /// Remove an idle tenant (no staged or in-flight commands).
  Status detach_tenant(std::uint32_t tenant);

  /// Stage one request on the tenant's ring; the future resolves with the
  /// end-to-end completion (staging wait included in latency_ns).
  sim::Future<block::Completion> submit(std::uint32_t tenant, const block::Request& request);

  /// Wake the scheduler (the owning driver calls this when stopping so the
  /// parked coroutine observes the stop flag and drains).
  void kick();

  [[nodiscard]] std::size_t tenant_count() const noexcept { return order_.size(); }
  [[nodiscard]] const ShareGrant* grant(std::uint32_t tenant) const;
  /// Commands a tenant currently has staged + in flight.
  [[nodiscard]] std::size_t tenant_backlog(std::uint32_t tenant) const;

  /// Multiplexer counters, registered as `nvmeshare.mux.*` (aggregated
  /// across every multiplexer in the cluster).
  struct Stats {
    Stats();
    obs::Gauge tenants;             ///< shares currently attached (this instance)
    obs::Counter shares_attached;
    obs::Counter staged_cmds;       ///< submissions accepted into staging rings
    obs::Counter dispatched_cmds;   ///< DRR dequeues handed to the driver
    obs::Counter completed_cmds;
    obs::Counter drr_rounds;        ///< scheduler passes over the tenant list
    obs::Counter throttle_ns;       ///< ns dispatches spent parked in QoS pacing
    obs::Counter deferred_cmds;     ///< dispatches that hit a QoS stall
    obs::Counter aborted_cmds;      ///< staged work failed at stop/detach
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  /// Same fixed-point token bucket as IoEngine's pacer (one token = 1e9
  /// scaled units), including the ceil-rounded refill horizon so a
  /// sustained tenant never admits more than rate * t + burst.
  struct TokenBucket {
    static constexpr std::int64_t kScale = 1'000'000'000;
    std::uint64_t rate = 0;
    std::int64_t scaled = 0;
    std::int64_t capacity = 0;
    sim::Time last = 0;
    void arm(std::uint64_t r, std::uint64_t burst);
    void refill(sim::Time now);
    [[nodiscard]] sim::Duration charge(sim::Time now, std::uint64_t tokens);
  };

  struct Staged {
    block::Request request;
    sim::Time start = 0;
    sim::Promise<block::Completion> promise;
  };

  struct Tenant {
    explicit Tenant(ShareGrant g) : grant(g) {}
    ShareGrant grant;
    std::deque<Staged> ring;
    std::int64_t deficit = 0;
    std::uint32_t inflight = 0;  ///< dispatched, not yet completed
    TokenBucket cmd_bucket;
    TokenBucket byte_bucket;
  };

  sim::Task scheduler_task(std::shared_ptr<bool> stop);
  sim::Task dispatch_task(Tenant& t, Staged staged, std::shared_ptr<bool> stop);
  void resolve_aborted(Staged& staged);

  sim::Engine& engine_;
  DispatchFn dispatch_;
  std::shared_ptr<bool> stop_;
  /// Cleared by the destructor so coroutines parked on the kick event (or
  /// awaiting a dispatch) never touch a destroyed multiplexer. `stop_` is
  /// the *owner's* flag — not ours to set.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  Config cfg_;
  sim::Event kick_;
  bool scheduler_running_ = false;
  std::unordered_map<std::uint32_t, std::unique_ptr<Tenant>> tenants_;
  std::vector<std::uint32_t> order_;  ///< attach order = DRR service order
  Stats stats_;
};

/// One tenant's share exposed as a block device: geometry mirrors the
/// underlying device, the queue depth is the share's CID window, and every
/// submission flows through the multiplexer's DRR + QoS machinery.
class TenantDevice final : public block::BlockDevice {
 public:
  TenantDevice(QpMultiplexer& mux, block::BlockDevice& underlying, std::uint32_t tenant);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::uint32_t block_size() const override { return underlying_.block_size(); }
  [[nodiscard]] std::uint64_t capacity_blocks() const override {
    return underlying_.capacity_blocks();
  }
  [[nodiscard]] std::uint32_t max_queue_depth() const override;
  [[nodiscard]] std::uint64_t max_transfer_bytes() const override {
    return underlying_.max_transfer_bytes();
  }
  sim::Future<block::Completion> submit(const block::Request& request) override;

 private:
  QpMultiplexer& mux_;
  block::BlockDevice& underlying_;
  std::uint32_t tenant_;
  std::string name_;
};

}  // namespace nvmeshare::mux
