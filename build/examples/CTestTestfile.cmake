# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_shared_log]=] "/root/repo/build/examples/shared_log")
set_tests_properties([=[example_shared_log]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cluster_kv]=] "/root/repo/build/examples/cluster_kv")
set_tests_properties([=[example_cluster_kv]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_failover]=] "/root/repo/build/examples/failover")
set_tests_properties([=[example_failover]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_shared_fs]=] "/root/repo/build/examples/shared_fs")
set_tests_properties([=[example_shared_fs]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
