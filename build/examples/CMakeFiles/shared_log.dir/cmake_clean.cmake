file(REMOVE_RECURSE
  "CMakeFiles/shared_log.dir/shared_log.cpp.o"
  "CMakeFiles/shared_log.dir/shared_log.cpp.o.d"
  "shared_log"
  "shared_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
