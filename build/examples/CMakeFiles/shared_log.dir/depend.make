# Empty dependencies file for shared_log.
# This may be replaced when dependencies are built.
