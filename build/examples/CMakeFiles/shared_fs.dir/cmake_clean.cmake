file(REMOVE_RECURSE
  "CMakeFiles/shared_fs.dir/shared_fs.cpp.o"
  "CMakeFiles/shared_fs.dir/shared_fs.cpp.o.d"
  "shared_fs"
  "shared_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
