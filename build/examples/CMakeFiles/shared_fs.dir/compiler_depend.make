# Empty compiler generated dependencies file for shared_fs.
# This may be replaced when dependencies are built.
