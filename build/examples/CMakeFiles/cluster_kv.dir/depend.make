# Empty dependencies file for cluster_kv.
# This may be replaced when dependencies are built.
