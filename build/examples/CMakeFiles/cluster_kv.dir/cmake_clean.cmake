file(REMOVE_RECURSE
  "CMakeFiles/cluster_kv.dir/cluster_kv.cpp.o"
  "CMakeFiles/cluster_kv.dir/cluster_kv.cpp.o.d"
  "cluster_kv"
  "cluster_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
