# Empty compiler generated dependencies file for queue_placement.
# This may be replaced when dependencies are built.
