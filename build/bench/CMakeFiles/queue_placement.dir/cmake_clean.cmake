file(REMOVE_RECURSE
  "CMakeFiles/queue_placement.dir/queue_placement.cpp.o"
  "CMakeFiles/queue_placement.dir/queue_placement.cpp.o.d"
  "queue_placement"
  "queue_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
