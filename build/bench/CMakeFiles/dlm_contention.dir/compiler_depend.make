# Empty compiler generated dependencies file for dlm_contention.
# This may be replaced when dependencies are built.
