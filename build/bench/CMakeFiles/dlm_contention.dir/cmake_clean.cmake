file(REMOVE_RECURSE
  "CMakeFiles/dlm_contention.dir/dlm_contention.cpp.o"
  "CMakeFiles/dlm_contention.dir/dlm_contention.cpp.o.d"
  "dlm_contention"
  "dlm_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlm_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
