file(REMOVE_RECURSE
  "CMakeFiles/completion_path.dir/completion_path.cpp.o"
  "CMakeFiles/completion_path.dir/completion_path.cpp.o.d"
  "completion_path"
  "completion_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/completion_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
