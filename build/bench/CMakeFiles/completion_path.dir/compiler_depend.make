# Empty compiler generated dependencies file for completion_path.
# This may be replaced when dependencies are built.
