file(REMOVE_RECURSE
  "CMakeFiles/hop_sweep.dir/hop_sweep.cpp.o"
  "CMakeFiles/hop_sweep.dir/hop_sweep.cpp.o.d"
  "hop_sweep"
  "hop_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hop_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
