# Empty dependencies file for hop_sweep.
# This may be replaced when dependencies are built.
