# Empty dependencies file for qd_sweep.
# This may be replaced when dependencies are built.
