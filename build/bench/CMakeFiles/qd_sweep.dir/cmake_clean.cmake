file(REMOVE_RECURSE
  "CMakeFiles/qd_sweep.dir/qd_sweep.cpp.o"
  "CMakeFiles/qd_sweep.dir/qd_sweep.cpp.o.d"
  "qd_sweep"
  "qd_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qd_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
