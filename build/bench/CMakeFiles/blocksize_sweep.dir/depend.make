# Empty dependencies file for blocksize_sweep.
# This may be replaced when dependencies are built.
