file(REMOVE_RECURSE
  "CMakeFiles/blocksize_sweep.dir/blocksize_sweep.cpp.o"
  "CMakeFiles/blocksize_sweep.dir/blocksize_sweep.cpp.o.d"
  "blocksize_sweep"
  "blocksize_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocksize_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
