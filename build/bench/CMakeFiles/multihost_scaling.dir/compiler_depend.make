# Empty compiler generated dependencies file for multihost_scaling.
# This may be replaced when dependencies are built.
