file(REMOVE_RECURSE
  "CMakeFiles/multihost_scaling.dir/multihost_scaling.cpp.o"
  "CMakeFiles/multihost_scaling.dir/multihost_scaling.cpp.o.d"
  "multihost_scaling"
  "multihost_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihost_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
