# Empty compiler generated dependencies file for fs_overhead.
# This may be replaced when dependencies are built.
