file(REMOVE_RECURSE
  "CMakeFiles/fs_overhead.dir/fs_overhead.cpp.o"
  "CMakeFiles/fs_overhead.dir/fs_overhead.cpp.o.d"
  "fs_overhead"
  "fs_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
