
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bounce_vs_iommu.cpp" "bench/CMakeFiles/bounce_vs_iommu.dir/bounce_vs_iommu.cpp.o" "gcc" "bench/CMakeFiles/bounce_vs_iommu.dir/bounce_vs_iommu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/nvs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/nvmeof/CMakeFiles/nvs_nvmeof.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/nvs_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/smartio/CMakeFiles/nvs_smartio.dir/DependInfo.cmake"
  "/root/repo/build/src/sisci/CMakeFiles/nvs_sisci.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/nvs_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/nvs_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/nvs_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nvs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nvs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nvs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/nvs_block.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/nvs_rdma.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
