# Empty compiler generated dependencies file for bounce_vs_iommu.
# This may be replaced when dependencies are built.
