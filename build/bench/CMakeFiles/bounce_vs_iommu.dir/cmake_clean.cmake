file(REMOVE_RECURSE
  "CMakeFiles/bounce_vs_iommu.dir/bounce_vs_iommu.cpp.o"
  "CMakeFiles/bounce_vs_iommu.dir/bounce_vs_iommu.cpp.o.d"
  "bounce_vs_iommu"
  "bounce_vs_iommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounce_vs_iommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
