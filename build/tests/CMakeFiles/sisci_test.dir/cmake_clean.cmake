file(REMOVE_RECURSE
  "CMakeFiles/sisci_test.dir/sisci_test.cpp.o"
  "CMakeFiles/sisci_test.dir/sisci_test.cpp.o.d"
  "sisci_test"
  "sisci_test.pdb"
  "sisci_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
