# Empty compiler generated dependencies file for sisci_test.
# This may be replaced when dependencies are built.
