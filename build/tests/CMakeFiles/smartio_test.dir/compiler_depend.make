# Empty compiler generated dependencies file for smartio_test.
# This may be replaced when dependencies are built.
