file(REMOVE_RECURSE
  "CMakeFiles/smartio_test.dir/smartio_test.cpp.o"
  "CMakeFiles/smartio_test.dir/smartio_test.cpp.o.d"
  "smartio_test"
  "smartio_test.pdb"
  "smartio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
