# Empty dependencies file for nvmeof_test.
# This may be replaced when dependencies are built.
