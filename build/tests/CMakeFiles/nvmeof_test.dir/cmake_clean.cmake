file(REMOVE_RECURSE
  "CMakeFiles/nvmeof_test.dir/nvmeof_test.cpp.o"
  "CMakeFiles/nvmeof_test.dir/nvmeof_test.cpp.o.d"
  "nvmeof_test"
  "nvmeof_test.pdb"
  "nvmeof_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmeof_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
