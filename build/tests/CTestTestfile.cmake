# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/pcie_test[1]_include.cmake")
include("/root/repo/build/tests/nvme_test[1]_include.cmake")
include("/root/repo/build/tests/sisci_test[1]_include.cmake")
include("/root/repo/build/tests/smartio_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/nvmeof_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
