# Empty compiler generated dependencies file for nvs_fs.
# This may be replaced when dependencies are built.
