file(REMOVE_RECURSE
  "CMakeFiles/nvs_fs.dir/dlm.cpp.o"
  "CMakeFiles/nvs_fs.dir/dlm.cpp.o.d"
  "CMakeFiles/nvs_fs.dir/filesystem.cpp.o"
  "CMakeFiles/nvs_fs.dir/filesystem.cpp.o.d"
  "libnvs_fs.a"
  "libnvs_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvs_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
