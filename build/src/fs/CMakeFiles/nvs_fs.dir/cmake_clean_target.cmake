file(REMOVE_RECURSE
  "libnvs_fs.a"
)
