# Empty compiler generated dependencies file for nvs_driver.
# This may be replaced when dependencies are built.
