file(REMOVE_RECURSE
  "CMakeFiles/nvs_driver.dir/bringup.cpp.o"
  "CMakeFiles/nvs_driver.dir/bringup.cpp.o.d"
  "CMakeFiles/nvs_driver.dir/client.cpp.o"
  "CMakeFiles/nvs_driver.dir/client.cpp.o.d"
  "CMakeFiles/nvs_driver.dir/cost_model.cpp.o"
  "CMakeFiles/nvs_driver.dir/cost_model.cpp.o.d"
  "CMakeFiles/nvs_driver.dir/irq.cpp.o"
  "CMakeFiles/nvs_driver.dir/irq.cpp.o.d"
  "CMakeFiles/nvs_driver.dir/local_driver.cpp.o"
  "CMakeFiles/nvs_driver.dir/local_driver.cpp.o.d"
  "CMakeFiles/nvs_driver.dir/manager.cpp.o"
  "CMakeFiles/nvs_driver.dir/manager.cpp.o.d"
  "libnvs_driver.a"
  "libnvs_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvs_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
