file(REMOVE_RECURSE
  "libnvs_driver.a"
)
