file(REMOVE_RECURSE
  "libnvs_sim.a"
)
