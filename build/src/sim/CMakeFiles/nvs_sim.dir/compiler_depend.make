# Empty compiler generated dependencies file for nvs_sim.
# This may be replaced when dependencies are built.
