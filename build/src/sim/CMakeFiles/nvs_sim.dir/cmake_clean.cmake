file(REMOVE_RECURSE
  "CMakeFiles/nvs_sim.dir/engine.cpp.o"
  "CMakeFiles/nvs_sim.dir/engine.cpp.o.d"
  "libnvs_sim.a"
  "libnvs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
