file(REMOVE_RECURSE
  "CMakeFiles/nvs_nvme.dir/block_store.cpp.o"
  "CMakeFiles/nvs_nvme.dir/block_store.cpp.o.d"
  "CMakeFiles/nvs_nvme.dir/controller.cpp.o"
  "CMakeFiles/nvs_nvme.dir/controller.cpp.o.d"
  "CMakeFiles/nvs_nvme.dir/queue.cpp.o"
  "CMakeFiles/nvs_nvme.dir/queue.cpp.o.d"
  "CMakeFiles/nvs_nvme.dir/spec.cpp.o"
  "CMakeFiles/nvs_nvme.dir/spec.cpp.o.d"
  "libnvs_nvme.a"
  "libnvs_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvs_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
