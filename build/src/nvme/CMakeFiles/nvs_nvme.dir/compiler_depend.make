# Empty compiler generated dependencies file for nvs_nvme.
# This may be replaced when dependencies are built.
