file(REMOVE_RECURSE
  "libnvs_nvme.a"
)
