file(REMOVE_RECURSE
  "libnvs_smartio.a"
)
