file(REMOVE_RECURSE
  "CMakeFiles/nvs_smartio.dir/smartio.cpp.o"
  "CMakeFiles/nvs_smartio.dir/smartio.cpp.o.d"
  "libnvs_smartio.a"
  "libnvs_smartio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvs_smartio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
