# Empty compiler generated dependencies file for nvs_smartio.
# This may be replaced when dependencies are built.
