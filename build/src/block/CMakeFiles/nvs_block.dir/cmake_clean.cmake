file(REMOVE_RECURSE
  "CMakeFiles/nvs_block.dir/block.cpp.o"
  "CMakeFiles/nvs_block.dir/block.cpp.o.d"
  "libnvs_block.a"
  "libnvs_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvs_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
