file(REMOVE_RECURSE
  "libnvs_block.a"
)
