# Empty compiler generated dependencies file for nvs_block.
# This may be replaced when dependencies are built.
