file(REMOVE_RECURSE
  "libnvs_nvmeof.a"
)
