file(REMOVE_RECURSE
  "CMakeFiles/nvs_nvmeof.dir/initiator.cpp.o"
  "CMakeFiles/nvs_nvmeof.dir/initiator.cpp.o.d"
  "CMakeFiles/nvs_nvmeof.dir/target.cpp.o"
  "CMakeFiles/nvs_nvmeof.dir/target.cpp.o.d"
  "libnvs_nvmeof.a"
  "libnvs_nvmeof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvs_nvmeof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
