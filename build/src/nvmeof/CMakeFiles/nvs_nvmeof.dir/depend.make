# Empty dependencies file for nvs_nvmeof.
# This may be replaced when dependencies are built.
