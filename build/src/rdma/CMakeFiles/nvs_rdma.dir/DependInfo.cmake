
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdma/rdma.cpp" "src/rdma/CMakeFiles/nvs_rdma.dir/rdma.cpp.o" "gcc" "src/rdma/CMakeFiles/nvs_rdma.dir/rdma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nvs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nvs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/nvs_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nvs_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
