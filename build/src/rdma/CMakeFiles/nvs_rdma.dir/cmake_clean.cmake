file(REMOVE_RECURSE
  "CMakeFiles/nvs_rdma.dir/rdma.cpp.o"
  "CMakeFiles/nvs_rdma.dir/rdma.cpp.o.d"
  "libnvs_rdma.a"
  "libnvs_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvs_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
