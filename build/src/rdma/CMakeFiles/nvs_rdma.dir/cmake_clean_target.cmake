file(REMOVE_RECURSE
  "libnvs_rdma.a"
)
