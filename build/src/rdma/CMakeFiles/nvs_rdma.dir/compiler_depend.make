# Empty compiler generated dependencies file for nvs_rdma.
# This may be replaced when dependencies are built.
