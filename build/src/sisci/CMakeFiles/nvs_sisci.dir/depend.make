# Empty dependencies file for nvs_sisci.
# This may be replaced when dependencies are built.
