file(REMOVE_RECURSE
  "CMakeFiles/nvs_sisci.dir/sisci.cpp.o"
  "CMakeFiles/nvs_sisci.dir/sisci.cpp.o.d"
  "libnvs_sisci.a"
  "libnvs_sisci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvs_sisci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
