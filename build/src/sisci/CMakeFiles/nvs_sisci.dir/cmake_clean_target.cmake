file(REMOVE_RECURSE
  "libnvs_sisci.a"
)
