file(REMOVE_RECURSE
  "libnvs_mem.a"
)
