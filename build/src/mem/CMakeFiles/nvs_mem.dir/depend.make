# Empty dependencies file for nvs_mem.
# This may be replaced when dependencies are built.
