file(REMOVE_RECURSE
  "CMakeFiles/nvs_mem.dir/allocator.cpp.o"
  "CMakeFiles/nvs_mem.dir/allocator.cpp.o.d"
  "CMakeFiles/nvs_mem.dir/iommu.cpp.o"
  "CMakeFiles/nvs_mem.dir/iommu.cpp.o.d"
  "CMakeFiles/nvs_mem.dir/phys_mem.cpp.o"
  "CMakeFiles/nvs_mem.dir/phys_mem.cpp.o.d"
  "libnvs_mem.a"
  "libnvs_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvs_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
