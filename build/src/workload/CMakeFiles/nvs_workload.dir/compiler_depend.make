# Empty compiler generated dependencies file for nvs_workload.
# This may be replaced when dependencies are built.
