file(REMOVE_RECURSE
  "CMakeFiles/nvs_workload.dir/fio.cpp.o"
  "CMakeFiles/nvs_workload.dir/fio.cpp.o.d"
  "CMakeFiles/nvs_workload.dir/testbed.cpp.o"
  "CMakeFiles/nvs_workload.dir/testbed.cpp.o.d"
  "libnvs_workload.a"
  "libnvs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
