file(REMOVE_RECURSE
  "libnvs_workload.a"
)
