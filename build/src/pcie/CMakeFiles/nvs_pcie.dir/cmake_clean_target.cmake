file(REMOVE_RECURSE
  "libnvs_pcie.a"
)
