file(REMOVE_RECURSE
  "CMakeFiles/nvs_pcie.dir/fabric.cpp.o"
  "CMakeFiles/nvs_pcie.dir/fabric.cpp.o.d"
  "CMakeFiles/nvs_pcie.dir/latency.cpp.o"
  "CMakeFiles/nvs_pcie.dir/latency.cpp.o.d"
  "CMakeFiles/nvs_pcie.dir/topology.cpp.o"
  "CMakeFiles/nvs_pcie.dir/topology.cpp.o.d"
  "libnvs_pcie.a"
  "libnvs_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvs_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
