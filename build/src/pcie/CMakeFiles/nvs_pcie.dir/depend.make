# Empty dependencies file for nvs_pcie.
# This may be replaced when dependencies are built.
