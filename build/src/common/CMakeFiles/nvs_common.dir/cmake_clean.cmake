file(REMOVE_RECURSE
  "CMakeFiles/nvs_common.dir/bytes.cpp.o"
  "CMakeFiles/nvs_common.dir/bytes.cpp.o.d"
  "CMakeFiles/nvs_common.dir/log.cpp.o"
  "CMakeFiles/nvs_common.dir/log.cpp.o.d"
  "CMakeFiles/nvs_common.dir/rng.cpp.o"
  "CMakeFiles/nvs_common.dir/rng.cpp.o.d"
  "CMakeFiles/nvs_common.dir/stats.cpp.o"
  "CMakeFiles/nvs_common.dir/stats.cpp.o.d"
  "CMakeFiles/nvs_common.dir/status.cpp.o"
  "CMakeFiles/nvs_common.dir/status.cpp.o.d"
  "libnvs_common.a"
  "libnvs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
