# Empty dependencies file for nvs_common.
# This may be replaced when dependencies are built.
