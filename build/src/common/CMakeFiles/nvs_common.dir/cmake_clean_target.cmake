file(REMOVE_RECURSE
  "libnvs_common.a"
)
