# Empty dependencies file for nvsh_fio.
# This may be replaced when dependencies are built.
