file(REMOVE_RECURSE
  "CMakeFiles/nvsh_fio.dir/nvsh_fio.cpp.o"
  "CMakeFiles/nvsh_fio.dir/nvsh_fio.cpp.o.d"
  "nvsh_fio"
  "nvsh_fio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvsh_fio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
