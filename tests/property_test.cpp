// Property-based and parameterized sweeps: invariants that must hold for
// whole families of configurations, not single examples.
#include <gtest/gtest.h>

#include <map>

#include "driver/local_driver.hpp"
#include "fault/fault.hpp"
#include "integrity/integrity.hpp"
#include "nvmeof/initiator.hpp"
#include "nvmeof/target.hpp"
#include "pcie/fabric.hpp"
#include "test_util.hpp"

namespace nvmeshare {
namespace {

using namespace testutil;

// --- queue-size sweep: ring wraparound and phase tags for any size ---------------

class QueueSizeSweep : public ::testing::TestWithParam<std::uint16_t> {};

TEST_P(QueueSizeSweep, ManyOpsThroughTinyQueues) {
  const std::uint16_t entries = GetParam();
  Testbed tb(small_testbed(2));
  driver::Client::Config cc;
  cc.queue_entries = entries;
  cc.queue_depth = std::min<std::uint32_t>(entries - 1u, 4u);
  auto stack = bring_up(tb, 0, 1, cc);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();

  // Enough operations to wrap the ring several times over.
  workload::JobSpec spec;
  spec.pattern = workload::JobSpec::Pattern::randrw;
  spec.ops = entries * 6u;
  spec.queue_depth = cc.queue_depth;
  spec.verify = true;
  spec.seed = entries;
  auto result = tb.wait(workload::run_job(tb.cluster(), *stack->client, 1, spec), 120_s);
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_EQ(result->ops_completed, entries * 6u);
  EXPECT_EQ(result->errors, 0u);
  EXPECT_EQ(result->verify_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Rings, QueueSizeSweep,
                         ::testing::Values<std::uint16_t>(2, 3, 4, 5, 8, 16, 64));

// --- block-size sweep: PRP handling across every descriptor shape ---------------

class BlockSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BlockSizeSweep, WriteReadVerifyRemote) {
  const std::uint32_t bytes = GetParam();
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value());
  // Two disjoint locations per size, one low and one high.
  write_read_verify(tb, *stack->client, 1, 64, bytes, 0x5000 + bytes);
  write_read_verify(tb, *stack->client, 1, 262144, bytes, 0x6000 + bytes);
}

INSTANTIATE_TEST_SUITE_P(Prp, BlockSizeSweep,
                         ::testing::Values<std::uint32_t>(
                             512,          // sub-page: PRP1 only
                             4096,         // exactly one page
                             4608,         // just over one page: PRP2 as data pointer
                             8192,         // exactly two pages
                             8704,         // just over two: smallest PRP list
                             61440,        // 15 pages
                             131072));     // MDTS: full 32-page PRP list

// --- randomized array-consistency property against an in-memory model -----------

class DeviceModelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeviceModelFuzz, DeviceBehavesLikeAnArrayOfBlocks) {
  const std::uint64_t seed = GetParam();
  Testbed tb(small_testbed(1));
  auto drv = tb.wait(
      driver::LocalDriver::start(tb.cluster(), tb.nvme_endpoint(), &tb.irq(0), {}));
  ASSERT_TRUE(drv.has_value());
  block::BlockDevice& dev = **drv;

  Rng rng(seed);
  constexpr std::uint64_t kRegionBlocks = 4096;  // 2 MiB working set
  std::map<std::uint64_t, std::uint8_t> model;   // block -> fill byte
  const std::uint64_t arena = *tb.cluster().alloc_dram(0, 256 * KiB, 4096);

  for (int op = 0; op < 120; ++op) {
    const std::uint32_t nblocks = static_cast<std::uint32_t>(rng.uniform(64) + 1);
    const std::uint64_t lba = rng.uniform(kRegionBlocks - nblocks);
    const std::uint64_t bytes = nblocks * 512ull;
    // Odd-but-legal buffer offsets exercise PRP1 offset handling.
    const std::uint64_t buffer = arena + rng.uniform(16) * 512;
    const bool is_write = rng.chance(0.6);

    if (is_write) {
      const auto fill = static_cast<std::uint8_t>(rng.uniform(255) + 1);
      Bytes data(bytes, std::byte{fill});
      ASSERT_TRUE(tb.fabric().host_dram(0).write(buffer, data).is_ok());
      auto done = do_io(tb, dev, {block::Op::write, lba, nblocks, buffer});
      ASSERT_TRUE(done.has_value() && done->status.is_ok()) << done->status.to_string();
      for (std::uint64_t b = 0; b < nblocks; ++b) model[lba + b] = fill;
    } else {
      auto done = do_io(tb, dev, {block::Op::read, lba, nblocks, buffer});
      ASSERT_TRUE(done.has_value() && done->status.is_ok()) << done->status.to_string();
      Bytes out(bytes);
      ASSERT_TRUE(tb.fabric().host_dram(0).read(buffer, out).is_ok());
      for (std::uint64_t b = 0; b < nblocks; ++b) {
        auto it = model.find(lba + b);
        const auto expected = it == model.end() ? std::uint8_t{0} : it->second;
        for (std::uint64_t i = 0; i < 512; ++i) {
          ASSERT_EQ(out[b * 512 + i], std::byte{expected})
              << "op " << op << " block " << lba + b << " byte " << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviceModelFuzz, ::testing::Values(1, 2, 3, 4, 5));

// --- determinism: identical seeds -> identical measurements ----------------------

class DeterminismSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismSweep, TwoIdenticalClustersAgreeExactly) {
  const std::uint64_t seed = GetParam();
  auto run_once = [&]() -> std::vector<sim::Duration> {
    Testbed tb(small_testbed(2));
    auto stack = bring_up(tb, 0, 1);
    EXPECT_TRUE(stack.has_value());
    workload::JobSpec spec;
    spec.pattern = workload::JobSpec::Pattern::randrw;
    spec.ops = 80;
    spec.queue_depth = 3;
    spec.seed = seed;
    auto result = tb.wait(workload::run_job(tb.cluster(), *stack->client, 1, spec), 120_s);
    EXPECT_TRUE(result.has_value());
    return result->total_latency.samples();
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep, ::testing::Values(11, 22, 33));

// --- WRR arbitration sweep: no weight corner may starve a class -----------------

struct WrrCase {
  std::uint8_t lpw, mpw, hpw;           // 0-based weight fields (weight = field + 1)
  nvme::SqPriority a, b;                 // the two clients' priority classes
};

class WrrWeightSweep : public ::testing::TestWithParam<WrrCase> {};

TEST_P(WrrWeightSweep, BothClientsCompleteVerifiedIoUnderWrr) {
  const WrrCase p = GetParam();
  Testbed tb(small_testbed(3));
  driver::Manager::Config mc;
  mc.enable_wrr = true;
  mc.wrr_low_weight = p.lpw;
  mc.wrr_medium_weight = p.mpw;
  mc.wrr_high_weight = p.hpw;
  auto mgr = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), mc));
  ASSERT_TRUE(mgr.has_value()) << mgr.status().to_string();

  driver::Client::Config ca;
  ca.qos_class = p.a;
  auto client_a = tb.wait(driver::Client::attach(tb.service(), 1, tb.device_id(), ca));
  ASSERT_TRUE(client_a.has_value()) << client_a.status().to_string();
  driver::Client::Config cb;
  cb.qos_class = p.b;
  auto client_b = tb.wait(driver::Client::attach(tb.service(), 2, tb.device_id(), cb));
  ASSERT_TRUE(client_b.has_value()) << client_b.status().to_string();

  // Both clients hammer the device at once; every corner of the weight
  // space must complete both verified jobs (a zero weight field still
  // means weight 1, so even the lowest class keeps making progress).
  auto make_spec = [](std::uint64_t seed, sisci::NodeId node) {
    workload::JobSpec spec;
    spec.name = "wrr-n" + std::to_string(node);
    spec.pattern = workload::JobSpec::Pattern::randrw;
    spec.ops = 120;
    spec.queue_depth = 4;
    spec.verify = true;
    spec.seed = seed;
    spec.region_offset_blocks = node * 4096;  // disjoint working sets
    spec.region_blocks = 4096;
    return spec;
  };
  auto fa = workload::run_job(tb.cluster(), **client_a, 1, make_spec(p.lpw * 100 + 1, 1));
  auto fb = workload::run_job(tb.cluster(), **client_b, 2, make_spec(p.hpw * 100 + 2, 2));
  auto ra = tb.wait(std::move(fa), 120_s);
  auto rb = tb.wait(std::move(fb), 120_s);
  ASSERT_TRUE(ra.has_value()) << ra.status().to_string();
  ASSERT_TRUE(rb.has_value()) << rb.status().to_string();
  for (const auto* r : {&*ra, &*rb}) {
    EXPECT_EQ(r->ops_completed, 120u);
    EXPECT_EQ(r->errors, 0u);
    EXPECT_EQ(r->verify_failures, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Weights, WrrWeightSweep,
    ::testing::Values(
        // all-zero weight fields: every weighted class at weight 1
        WrrCase{0, 0, 0, nvme::SqPriority::high, nvme::SqPriority::low},
        // the default shape
        WrrCase{0, 1, 3, nvme::SqPriority::high, nvme::SqPriority::low},
        // maximal field values
        WrrCase{255, 255, 255, nvme::SqPriority::low, nvme::SqPriority::low},
        // all-urgent corner: strict priority, weighted classes idle
        WrrCase{0, 1, 3, nvme::SqPriority::urgent, nvme::SqPriority::urgent},
        // inverted weights: low outweighs high, both still finish
        WrrCase{7, 1, 0, nvme::SqPriority::medium, nvme::SqPriority::high}));

// --- protection information survives every data path ------------------------------

// One verified random-rw job with the full PI pipeline on (PRACT writes,
// PRCHK reads, client shadow verify) must behave exactly like an
// integrity-off run — zero errors, zero verify failures — on both data
// paths, and the integrity counters must show the tuples actually flowed.
class PiDataPathSweep : public ::testing::TestWithParam<driver::Client::DataPath> {};

TEST_P(PiDataPathSweep, VerifiedJobRunsCleanWithPiEnabled) {
  Testbed tb([] {
    TestbedConfig cfg = small_testbed(2);
    cfg.nvme.pi_enabled = true;
    return cfg;
  }());
  driver::Client::Config cc;
  cc.pi_verify = true;
  cc.data_path = GetParam();
  auto stack = bring_up(tb, 0, 1, cc);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();

  const std::uint64_t gen0 = integrity::stats().pi_generated.value();
  const std::uint64_t ver0 = integrity::stats().pi_verified.value();
  const std::uint64_t fail0 = integrity::stats().client_verify_failures.value();

  workload::JobSpec spec;
  spec.pattern = workload::JobSpec::Pattern::randrw;
  spec.ops = 200;
  spec.queue_depth = 4;
  spec.region_blocks = 512;  // small region so reads revisit written blocks
  spec.verify = true;
  auto result = tb.wait(workload::run_job(tb.cluster(), *stack->client, 1, spec), 120_s);
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_EQ(result->errors, 0u);
  EXPECT_EQ(result->verify_failures, 0u);
  EXPECT_GT(integrity::stats().pi_generated.value(), gen0);
  EXPECT_GT(integrity::stats().pi_verified.value(), ver0);
  EXPECT_EQ(integrity::stats().client_verify_failures.value(), fail0);
}

INSTANTIATE_TEST_SUITE_P(DataPaths, PiDataPathSweep,
                         ::testing::Values(driver::Client::DataPath::bounce_buffer,
                                           driver::Client::DataPath::iommu));

TEST(PiDataPaths, NvmeofDigestsRunClean) {
  // Same property over the NVMe-oF path: DDGST on both sides, a verified
  // job, and not a single digest mismatch on an honest fabric.
  Testbed tb(small_testbed(2));
  nvmeof::Target::Config tc;
  tc.data_digest = true;
  auto target =
      tb.wait(nvmeof::Target::start(tb.cluster(), tb.nvme_endpoint(), tb.network(), tc));
  ASSERT_TRUE(target.has_value()) << target.status().to_string();
  nvmeof::Initiator::Config ic;
  ic.data_digest = true;
  auto initiator =
      tb.wait(nvmeof::Initiator::connect(tb.cluster(), tb.network(), **target, 1, ic));
  ASSERT_TRUE(initiator.has_value()) << initiator.status().to_string();

  const std::uint64_t dig0 = integrity::stats().digests_generated.value();
  const std::uint64_t err0 = integrity::stats().digest_errors.value();

  workload::JobSpec spec;
  spec.pattern = workload::JobSpec::Pattern::randrw;
  spec.ops = 200;
  spec.queue_depth = 4;
  spec.region_blocks = 512;
  spec.verify = true;
  auto result = tb.wait(workload::run_job(tb.cluster(), **initiator, 1, spec), 120_s);
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_EQ(result->errors, 0u);
  EXPECT_EQ(result->verify_failures, 0u);
  EXPECT_GT(integrity::stats().digests_generated.value(), dig0);
  EXPECT_EQ(integrity::stats().digest_errors.value(), err0);
}

// --- determinism under corruption faults ------------------------------------------

class CorruptionDeterminismSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptionDeterminismSweep, SameSeedCorruptionRunsAgreeExactly) {
  // The whole integrity pipeline — seeded bit flips, shadow-tuple verify
  // failures, retries, the background scrubber — must be as reproducible
  // as a fault-free run: identical seeds, identical latency samples and
  // identical outcomes. A flip that lands on a CQE can legitimately fail an
  // op (a corrupted status is not retryable); the pin is that both runs
  // fail the exact same way, not that every run is clean.
  const std::uint64_t seed = GetParam();
  struct Outcome {
    std::vector<sim::Duration> samples;
    std::uint64_t errors = 0;
    std::uint64_t verify_failures = 0;
    bool operator==(const Outcome&) const = default;
  };
  auto run_once = [&]() -> Outcome {
    auto plan = fault::parse_plan(
        "seed=13;flip_dma_bits:src=0,dst=1,nth=20,count=3;"
        "torn_dma_write:src=0,dst=1,class=dram,nth=90,count=1");
    EXPECT_TRUE(plan.has_value());
    fault::Injector::global().configure(std::move(*plan));

    Outcome outcome;
    {
      Testbed tb([] {
        TestbedConfig cfg = small_testbed(2);
        cfg.nvme.pi_enabled = true;
        return cfg;
      }());
      driver::Client::Config cc;
      cc.pi_verify = true;
      cc.cmd_timeout_ns = 500'000;
      cc.cmd_retry_limit = 3;
      cc.retry_backoff_ns = 50'000;
      driver::Manager::Config mc;
      mc.scrub_interval_ns = 100'000;
      auto stack = bring_up(tb, 0, 1, cc, mc);
      EXPECT_TRUE(stack.has_value());
      pcie::Fabric* fab = &tb.fabric();
      fault::Injector::global().arm(
          tb.engine(), {.set_ntb_link = [fab](std::uint32_t host, bool up) {
            (void)fab->set_ntb_link(host, up);
          }});

      workload::JobSpec spec;
      spec.pattern = workload::JobSpec::Pattern::randrw;
      spec.ops = 120;
      spec.queue_depth = 3;
      spec.region_blocks = 512;
      spec.verify = true;
      spec.seed = seed;
      auto result = tb.wait(workload::run_job(tb.cluster(), *stack->client, 1, spec), 120_s);
      EXPECT_TRUE(result.has_value());
      outcome = {result->total_latency.samples(), result->errors, result->verify_failures};
    }
    fault::Injector::global().disarm();
    return outcome;
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionDeterminismSweep, ::testing::Values(44, 55));

// --- allocator fuzz: no overlap, full recovery ------------------------------------

class AllocatorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorFuzz, RandomAllocFreeNeverOverlaps) {
  Rng rng(GetParam());
  mem::RangeAllocator alloc(0x10000, 1 * MiB);
  std::map<std::uint64_t, std::uint64_t> live;  // addr -> size

  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.chance(0.6)) {
      const std::uint64_t size = rng.uniform(16 * KiB) + 1;
      const std::uint64_t align = 1ull << rng.uniform(13);  // 1..4096
      auto addr = alloc.alloc(size, align);
      if (!addr) continue;  // exhaustion is fine; corruption is not
      EXPECT_EQ(*addr % align, 0u);
      // No overlap with any live allocation.
      auto next = live.lower_bound(*addr);
      if (next != live.end()) {
        EXPECT_LE(*addr + size, next->first);
      }
      if (next != live.begin()) {
        auto prev = std::prev(next);
        EXPECT_LE(prev->first + prev->second, *addr);
      }
      live.emplace(*addr, size);
    } else {
      auto victim = live.begin();
      std::advance(victim, static_cast<long>(rng.uniform(live.size())));
      EXPECT_TRUE(alloc.free(victim->first).is_ok());
      live.erase(victim);
    }
  }
  for (const auto& [addr, size] : live) EXPECT_TRUE(alloc.free(addr).is_ok());
  // Everything returned: the full arena must be allocatable again.
  EXPECT_TRUE(alloc.alloc(1 * MiB, 1).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorFuzz, ::testing::Values(7, 8, 9));

// --- latency model invariants -----------------------------------------------------

TEST(LatencyModelProperties, MonotoneInBytesAndPath) {
  pcie::LatencyModel m;
  sim::Duration prev_read = 0;
  sim::Duration prev_write = 0;
  for (std::uint64_t bytes : {0ull, 64ull, 512ull, 4096ull, 65536ull, 131072ull}) {
    const auto r = m.read_ns(300, 1, bytes);
    const auto w = m.posted_write_ns(300, 1, bytes);
    EXPECT_GE(r, prev_read);
    EXPECT_GE(w, prev_write);
    EXPECT_GT(r, w);  // non-posted reads always cost more than posted writes
    prev_read = r;
    prev_write = w;
  }
  for (sim::Duration path : {0, 100, 500, 1000}) {
    EXPECT_LT(m.read_ns(path, 0, 4096), m.read_ns(path + 120, 0, 4096));
    EXPECT_LT(m.read_ns(path, 0, 4096), m.read_ns(path, 1, 4096));  // NTB crossing costs
  }
}

TEST(LatencyModelProperties, ReadPaysPathTwiceWritesOnce) {
  pcie::LatencyModel m;
  // Adding X ns of path raises a read by 2X and a posted write by X.
  const sim::Duration dx = 500;
  EXPECT_EQ(m.read_ns(1000 + dx, 0, 0) - m.read_ns(1000, 0, 0), 2 * dx);
  EXPECT_EQ(m.posted_write_ns(1000 + dx, 0, 0) - m.posted_write_ns(1000, 0, 0), dx);
}

// --- NTB mapping fuzz ---------------------------------------------------------------

class NtbMappingFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NtbMappingFuzz, RandomSegmentsMapAndRoundTrip) {
  Rng rng(GetParam());
  Testbed tb(small_testbed(2));
  for (int round = 0; round < 12; ++round) {
    const std::uint64_t size = (rng.uniform(8) + 1) * 512 * KiB + rng.uniform(3) * 4096;
    auto seg = tb.cluster().create_segment(0, 0x1000 + static_cast<sisci::SegmentId>(round),
                                           size);
    ASSERT_TRUE(seg.has_value());
    auto map = sisci::Map::create(tb.cluster(), 1, seg->descriptor());
    ASSERT_TRUE(map.has_value()) << map.status().to_string();

    // Probe a few random offsets, including near the end. Single accesses
    // may not straddle an NTB window boundary (hardware would split them;
    // the model rejects them), so nudge any straddler back.
    const std::uint64_t window = tb.config().ntb_window_size;
    for (int probe = 0; probe < 4; ++probe) {
      const std::uint64_t len = std::min<std::uint64_t>(rng.uniform(4096) + 1, size);
      std::uint64_t off = align_down(rng.uniform(size - len + 1), 4);
      if (off / window != (off + len - 1) / window) {
        off = align_down((off / window + 1) * window - len, 4);
      }
      Bytes data = make_pattern(len, rng.next());
      ASSERT_TRUE(tb.fabric().poke(1, map->addr() + off, data).is_ok())
          << "size=" << size << " off=" << off << " len=" << len;
      Bytes out(len);
      ASSERT_TRUE(seg->read(off, out).is_ok());
      EXPECT_EQ(out, data);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NtbMappingFuzz, ::testing::Values(101, 202));

}  // namespace
}  // namespace nvmeshare
