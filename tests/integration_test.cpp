// End-to-end integration tests: the full stack — PCIe fabric, NTBs, NVMe
// controller, SISCI/SmartIO, distributed driver, baselines — moving real
// bytes with verification.
#include <gtest/gtest.h>

#include "nvmeof/initiator.hpp"
#include "nvmeof/target.hpp"
#include "test_util.hpp"

namespace nvmeshare {
namespace {

using namespace testutil;

TEST(Integration, SingleHostManagerAndClient) {
  Testbed tb(small_testbed(1));
  auto stack = bring_up(tb, 0, 0);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  write_read_verify(tb, *stack->client, 0, /*lba=*/128, 4096, /*seed=*/0xAA01);
}

TEST(Integration, RemoteClientOverNtb) {
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, /*manager_node=*/0, /*client_node=*/1);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();

  // The remote client's traffic must actually cross NTBs.
  const std::uint64_t translations_before = tb.fabric().stats().ntb_translations;
  write_read_verify(tb, *stack->client, 1, /*lba=*/4096, 16 * KiB, /*seed=*/0xBB02);
  EXPECT_GT(tb.fabric().stats().ntb_translations, translations_before);
}

TEST(Integration, RemoteManagerLocalDeviceClient) {
  // Manager on host 1 operating the device in host 0; client on host 0.
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, /*manager_node=*/1, /*client_node=*/0);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  write_read_verify(tb, *stack->client, 0, /*lba=*/64, 8192, /*seed=*/0xCC03);
}

TEST(Integration, CrossHostDataVisibility) {
  // Host 1 writes a block; host 2 reads it through its own queue pair.
  Testbed tb(small_testbed(3));
  auto manager = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), {}));
  ASSERT_TRUE(manager.has_value()) << manager.status().to_string();
  auto c1 = tb.wait(driver::Client::attach(tb.service(), 1, tb.device_id(), {}));
  auto c2 = tb.wait(driver::Client::attach(tb.service(), 2, tb.device_id(), {}));
  ASSERT_TRUE(c1.has_value()) << c1.status().to_string();
  ASSERT_TRUE(c2.has_value()) << c2.status().to_string();

  const std::size_t bytes = 4096;
  const std::uint64_t seed = 0xD00D;
  const std::uint64_t wbuf = alloc_pattern_buffer(tb, 1, bytes, seed);
  auto wr = do_io(tb, **c1, {block::Op::write, 512, 8, wbuf});
  ASSERT_TRUE(wr.has_value() && wr->status.is_ok());

  const std::uint64_t rbuf = alloc_pattern_buffer(tb, 2, bytes, ~seed);
  auto rd = do_io(tb, **c2, {block::Op::read, 512, 8, rbuf});
  ASSERT_TRUE(rd.has_value() && rd->status.is_ok());
  EXPECT_TRUE(buffer_matches(tb, 2, rbuf, bytes, seed));
}

TEST(Integration, FlushCompletes) {
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value());
  auto fl = do_io(tb, *stack->client, {block::Op::flush, 0, 0, 0});
  ASSERT_TRUE(fl.has_value());
  EXPECT_TRUE(fl->status.is_ok()) << fl->status.to_string();
}

TEST(Integration, LargeTransferUsesPrpList) {
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value());
  // 64 KiB = 16 pages -> PRP list path in both driver and controller.
  write_read_verify(tb, *stack->client, 1, /*lba=*/10000, 64 * KiB, /*seed=*/0xE405);
}

TEST(Integration, ReadBeyondCapacityFails) {
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value());
  const std::uint64_t buf = alloc_pattern_buffer(tb, 1, 4096, 1);
  block::Request r{block::Op::read, stack->client->capacity_blocks() - 2, 8, buf};
  auto completion = do_io(tb, *stack->client, r);
  ASSERT_TRUE(completion.has_value());
  EXPECT_FALSE(completion->status.is_ok());
}

TEST(Integration, HostSideSqPlacementAlsoWorks) {
  Testbed tb(small_testbed(2));
  driver::Client::Config cc;
  cc.sq_placement = driver::Client::SqPlacement::host_side;
  auto stack = bring_up(tb, 0, 1, cc);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  write_read_verify(tb, *stack->client, 1, /*lba=*/2048, 4096, /*seed=*/0xF506);
}

TEST(Integration, IommuDataPathAlsoWorks) {
  Testbed tb(small_testbed(2));
  driver::Client::Config cc;
  cc.data_path = driver::Client::DataPath::iommu;
  auto stack = bring_up(tb, 0, 1, cc);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  write_read_verify(tb, *stack->client, 1, /*lba=*/3000, 16 * KiB, /*seed=*/0xA607);
  EXPECT_GT(stack->client->stats().iommu_maps, 0u);
  EXPECT_EQ(stack->client->stats().bounce_copies, 0u);
}

TEST(Integration, LocalDriverBaseline) {
  Testbed tb(small_testbed(1));
  auto drv = tb.wait(
      driver::LocalDriver::start(tb.cluster(), tb.nvme_endpoint(), &tb.irq(0), {}));
  ASSERT_TRUE(drv.has_value()) << drv.status().to_string();
  write_read_verify(tb, **drv, 0, /*lba=*/77, 4096, /*seed=*/0xB708);
  EXPECT_GT((*drv)->stats().interrupts, 0u);
}

TEST(Integration, NvmeofStack) {
  Testbed tb(small_testbed(2));
  nvmeof::Target::Config tc;
  auto target =
      tb.wait(nvmeof::Target::start(tb.cluster(), tb.nvme_endpoint(), tb.network(), tc));
  ASSERT_TRUE(target.has_value()) << target.status().to_string();
  nvmeof::Initiator::Config ic;
  auto initiator = tb.wait(
      nvmeof::Initiator::connect(tb.cluster(), tb.network(), **target, 1, ic));
  ASSERT_TRUE(initiator.has_value()) << initiator.status().to_string();
  write_read_verify(tb, **initiator, 1, /*lba=*/999, 4096, /*seed=*/0xC809);
  write_read_verify(tb, **initiator, 1, /*lba=*/2000, 32 * KiB, /*seed=*/0xC80A);
  EXPECT_GT(tb.network().stats().sends, 0u);
  EXPECT_GT(tb.network().stats().rdma_writes, 0u);  // read data push
  EXPECT_GT(tb.network().stats().rdma_reads, 0u);   // large-write data pull
}

TEST(Integration, ClientDetachAndReattach) {
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value());
  const std::uint16_t old_qid = stack->client->qid();
  Status st = tb.wait_status(stack->client->detach(), 10_s);
  EXPECT_TRUE(st.is_ok()) << st.to_string();

  auto again = tb.wait(driver::Client::attach(tb.service(), 1, tb.device_id(), {}));
  ASSERT_TRUE(again.has_value()) << again.status().to_string();
  EXPECT_EQ((*again)->qid(), old_qid);  // the qid was recycled
  write_read_verify(tb, **again, 1, /*lba=*/88, 4096, /*seed=*/0xD90A);
}

TEST(Integration, ParallelClientsIndependentRegions) {
  Testbed tb(small_testbed(4));
  auto manager = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), {}));
  ASSERT_TRUE(manager.has_value());
  std::vector<std::unique_ptr<driver::Client>> clients;
  for (smartio::NodeId n = 1; n <= 3; ++n) {
    auto c = tb.wait(driver::Client::attach(tb.service(), n, tb.device_id(), {}));
    ASSERT_TRUE(c.has_value()) << c.status().to_string();
    clients.push_back(std::move(*c));
  }
  // Three concurrent verified jobs on disjoint regions.
  std::vector<sim::Future<Result<workload::JobResult>>> jobs;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    workload::JobSpec spec;
    spec.name = "client" + std::to_string(i);
    spec.pattern = workload::JobSpec::Pattern::randrw;
    spec.ops = 300;
    spec.queue_depth = 4;
    spec.verify = true;
    spec.seed = 100 + i;
    spec.region_blocks = 64 * 1024;
    spec.region_offset_blocks = i * 128 * 1024;
    jobs.push_back(workload::run_job(tb.cluster(), *clients[i],
                                     static_cast<sisci::NodeId>(i + 1), spec));
  }
  for (auto& job : jobs) {
    auto result = tb.wait(std::move(job), 120_s);
    ASSERT_TRUE(result.has_value()) << result.status().to_string();
    EXPECT_EQ(result->errors, 0u);
    EXPECT_EQ(result->verify_failures, 0u);
    EXPECT_EQ(result->ops_completed, 300u);
  }
  EXPECT_EQ(manager->get()->active_queue_pairs(), 4u);  // admin + 3 clients
}

TEST(Integration, ManagerRestartReusesQueueMemorySafely) {
  // Regression test: after a full teardown, freshly attached queues may be
  // allocated over memory holding stale completion entries from the
  // previous epoch. Phase-tag handling must not read those as valid.
  Testbed tb(small_testbed(2));
  {
    auto stack = bring_up(tb, 0, 1);
    ASSERT_TRUE(stack.has_value());
    // Generate plenty of completions so the old CQ pages are dirty.
    workload::JobSpec spec;
    spec.pattern = workload::JobSpec::Pattern::randrw;
    spec.ops = 120;
    spec.queue_depth = 4;
    auto result = tb.wait(workload::run_job(tb.cluster(), *stack->client, 1, spec), 60_s);
    ASSERT_TRUE(result.has_value());
    ASSERT_EQ(result->errors, 0u);
  }  // manager + client destroyed; segments freed
  tb.engine().run_for(1_ms);

  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  workload::JobSpec spec;
  spec.pattern = workload::JobSpec::Pattern::randrw;
  spec.ops = 120;
  spec.queue_depth = 4;
  spec.verify = true;
  auto result = tb.wait(workload::run_job(tb.cluster(), *stack->client, 1, spec), 60_s);
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_EQ(result->errors, 0u);
  EXPECT_EQ(result->verify_failures, 0u);
}

TEST(Integration, ManagerRejectsSecondManager) {
  Testbed tb(small_testbed(2));
  auto m1 = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), {}));
  ASSERT_TRUE(m1.has_value());
  driver::Manager::Config cfg2;
  cfg2.metadata_segment_id = 0x4d455442;  // avoid the segment-id collision
  auto m2 = tb.wait(driver::Manager::start(tb.service(), 1, tb.device_id(), cfg2));
  EXPECT_FALSE(m2.has_value());
  EXPECT_EQ(m2.error_code(), Errc::permission_denied);
}

}  // namespace
}  // namespace nvmeshare
