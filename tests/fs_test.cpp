// Tests for nvsfs, the shared-disk filesystem, and the bakery distributed
// lock that coordinates its metadata across hosts.
#include <gtest/gtest.h>

#include "fs/dlm.hpp"
#include "fs/filesystem.hpp"
#include "test_util.hpp"

namespace nvmeshare::fs {
namespace {

using namespace testutil;

TEST(FsLayout, OnDiskSizes) {
  EXPECT_EQ(sizeof(Inode), 256u);
  EXPECT_EQ(kInodesPerBlock, 16u);
  EXPECT_EQ(kIndirectEntries, 512u);
  EXPECT_EQ(kMaxFileBytes, (12 + 512) * 4096u);
  EXPECT_EQ(sizeof(BakeryLock::Slot), 16u);
}

// --- BakeryLock ----------------------------------------------------------------

struct DlmFixture : ::testing::Test {
  DlmFixture() : tb(small_testbed(3)) {}

  Testbed tb;
};

TEST_F(DlmFixture, SingleParticipantAcquireRelease) {
  auto lock = BakeryLock::create(tb.cluster(), 0, 0xD1, 1, 0);
  ASSERT_TRUE(lock.has_value()) << lock.status().to_string();
  auto got = tb.wait_plain(lock->acquire());
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(*got);
  EXPECT_TRUE(lock->release().is_ok());
  EXPECT_EQ(lock->acquisitions(), 1u);
}

TEST_F(DlmFixture, MutualExclusionAcrossHosts) {
  // Three hosts increment a shared counter (in host 0's DRAM) under the
  // lock: lost updates are impossible iff the lock provides mutual
  // exclusion over the remote read-modify-write.
  auto l0 = BakeryLock::create(tb.cluster(), 0, 0xD2, 3, 0);
  ASSERT_TRUE(l0.has_value());
  auto l1 = BakeryLock::join(tb.cluster(), 1, 0, 0xD2, 1);
  auto l2 = BakeryLock::join(tb.cluster(), 2, 0, 0xD2, 2);
  ASSERT_TRUE(l1.has_value() && l2.has_value());

  // The shared counter lives in a host-0 segment; every host maps it
  // through its own NTB so the RMW really is remote shared memory.
  auto counter_seg = tb.cluster().create_segment(0, 0xC0, 4096);
  ASSERT_TRUE(counter_seg.has_value());
  ASSERT_TRUE(counter_seg->write(0, Bytes(8, std::byte{0})).is_ok());
  std::vector<sisci::Map> maps;
  for (sisci::NodeId n = 0; n < 3; ++n) {
    auto map = sisci::Map::create(tb.cluster(), n, counter_seg->descriptor());
    ASSERT_TRUE(map.has_value());
    maps.push_back(std::move(*map));
  }
  constexpr int kIters = 25;
  int done = 0;
  int in_critical = 0;
  bool overlap = false;

  auto contender = [&](BakeryLock& lock, sisci::NodeId node) -> sim::Task {
    pcie::Fabric& fabric = tb.fabric();
    sim::Engine& engine = tb.engine();
    const std::uint64_t counter_addr = maps[node].addr();
    for (int i = 0; i < kIters; ++i) {
      const bool got = co_await lock.acquire(2_s);
      if (!got) break;
      if (++in_critical > 1) overlap = true;
      // Remote read-modify-write with a deliberate pause in the middle: any
      // mutual-exclusion violation loses increments.
      auto raw = co_await fabric.read(fabric.cpu(node), counter_addr, 8);
      co_await sim::delay(engine, 2000);
      Bytes updated(8);
      store_pod(updated, load_pod<std::uint64_t>(*raw) + 1);
      (void)fabric.post_write(fabric.cpu(node), counter_addr, std::move(updated));
      // The posted write must land before we let the next holder read.
      co_await sim::delay(engine, 5000);
      --in_critical;
      (void)lock.release();
      co_await sim::delay(engine, 500);
    }
    ++done;
  };
  contender(*l0, 0);
  contender(*l1, 1);
  contender(*l2, 2);
  tb.engine().run_for(5_s);

  EXPECT_EQ(done, 3);
  EXPECT_FALSE(overlap) << "two hosts were inside the critical section at once";
  Bytes final_raw(8);
  ASSERT_TRUE(counter_seg->read(0, final_raw).is_ok());
  EXPECT_EQ(load_pod<std::uint64_t>(final_raw), static_cast<std::uint64_t>(3 * kIters))
      << "lost updates";
}

TEST_F(DlmFixture, AcquireTimesOutWhileHeld) {
  auto l0 = BakeryLock::create(tb.cluster(), 0, 0xD3, 2, 0);
  auto l1 = BakeryLock::join(tb.cluster(), 1, 0, 0xD3, 1);
  ASSERT_TRUE(l0.has_value() && l1.has_value());
  auto got0 = tb.wait_plain(l0->acquire());
  ASSERT_TRUE(got0.has_value() && *got0);
  auto got1 = tb.wait_plain(l1->acquire(2_ms), 60_s);
  ASSERT_TRUE(got1.has_value());
  EXPECT_FALSE(*got1);  // timed out
  ASSERT_TRUE(l0->release().is_ok());
  auto retry = tb.wait_plain(l1->acquire(10_ms), 60_s);
  ASSERT_TRUE(retry.has_value());
  EXPECT_TRUE(*retry);
}

TEST_F(DlmFixture, JoinValidatesIndex) {
  auto l0 = BakeryLock::create(tb.cluster(), 0, 0xD4, 2, 0);
  ASSERT_TRUE(l0.has_value());
  EXPECT_FALSE(BakeryLock::join(tb.cluster(), 1, 0, 0xD4, 5).has_value());
  EXPECT_FALSE(BakeryLock::join(tb.cluster(), 1, 0, 0xBAD, 1).has_value());
}

// --- FileSystem ----------------------------------------------------------------

struct FsFixture : ::testing::Test {
  FsFixture() : tb(small_testbed(3)) {
    auto stack = bring_up(tb, 0, 1);
    EXPECT_TRUE(stack.has_value()) << stack.status().to_string();
    manager = std::move(stack->manager);
    client1 = std::move(stack->client);
    FileSystem::Config cfg;
    cfg.fs_blocks = 4096;  // 16 MiB: plenty and fast
    auto formatted = tb.wait(FileSystem::format(tb.cluster(), *client1, 1, cfg), 60_s);
    EXPECT_TRUE(formatted.has_value()) << formatted.status().to_string();
    fs1 = std::move(*formatted);
  }

  /// Mount the same filesystem from another host through its own client.
  std::unique_ptr<FileSystem> mount_from(sisci::NodeId node) {
    auto client = tb.wait(driver::Client::attach(tb.service(), node, tb.device_id(), {}));
    EXPECT_TRUE(client.has_value());
    clients.push_back(std::move(*client));
    auto mounted = tb.wait(
        FileSystem::mount(tb.cluster(), *clients.back(), node, 1, FileSystem::Config{}), 60_s);
    EXPECT_TRUE(mounted.has_value()) << mounted.status().to_string();
    return std::move(*mounted);
  }

  Bytes file_read(FileSystem& fs, std::uint32_t ino, std::uint64_t off, std::uint64_t len) {
    auto data = tb.wait(fs.read(ino, off, len), 60_s);
    EXPECT_TRUE(data.has_value()) << data.status().to_string();
    return data ? std::move(*data) : Bytes{};
  }

  Testbed tb;
  std::unique_ptr<driver::Manager> manager;
  std::unique_ptr<driver::Client> client1;
  std::vector<std::unique_ptr<driver::Client>> clients;
  std::unique_ptr<FileSystem> fs1;
};

TEST_F(FsFixture, FormatGeometry) {
  const Superblock& sb = fs1->superblock();
  EXPECT_EQ(sb.magic, kSuperblockMagic);
  EXPECT_EQ(sb.fs_blocks, 4096u);
  EXPECT_EQ(sb.inode_count, 256u);
  EXPECT_EQ(sb.bitmap_start, 1u);
  EXPECT_EQ(sb.data_start, 1 + sb.bitmap_blocks + sb.inode_blocks);
  EXPECT_EQ(sb.data_blocks, sb.fs_blocks - sb.data_start);
}

TEST_F(FsFixture, CreateLookupListRemove) {
  auto a = tb.wait(fs1->create("alpha"), 60_s);
  auto b = tb.wait(fs1->create("beta"), 60_s);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_NE(*a, *b);

  auto found = tb.wait(fs1->lookup("beta"), 60_s);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, *b);
  EXPECT_EQ(tb.wait(fs1->lookup("gamma"), 60_s).error_code(), Errc::not_found);

  auto listing = tb.wait(fs1->list(), 60_s);
  ASSERT_TRUE(listing.has_value());
  EXPECT_EQ(listing->size(), 2u);

  auto removed = tb.wait(fs1->remove("alpha"), 60_s);
  ASSERT_TRUE(removed.has_value());
  listing = tb.wait(fs1->list(), 60_s);
  EXPECT_EQ(listing->size(), 1u);
  EXPECT_EQ((*listing)[0].name, "beta");
}

TEST_F(FsFixture, DuplicateCreateRejected) {
  ASSERT_TRUE(tb.wait(fs1->create("dup"), 60_s).has_value());
  EXPECT_EQ(tb.wait(fs1->create("dup"), 60_s).error_code(), Errc::already_exists);
}

TEST_F(FsFixture, BadNamesRejected) {
  EXPECT_EQ(tb.wait(fs1->create(""), 60_s).error_code(), Errc::invalid_argument);
  EXPECT_EQ(tb.wait(fs1->create(std::string(100, 'x')), 60_s).error_code(),
            Errc::invalid_argument);
}

TEST_F(FsFixture, SmallWriteReadRoundTrip) {
  auto ino = tb.wait(fs1->create("file"), 60_s);
  ASSERT_TRUE(ino.has_value());
  Bytes data = make_pattern(1000, 5);
  auto written = tb.wait(fs1->write(*ino, 0, data), 60_s);
  ASSERT_TRUE(written.has_value());
  EXPECT_EQ(*written, 1000u);

  Bytes out = file_read(*fs1, *ino, 0, 1000);
  EXPECT_EQ(out, data);

  auto info = tb.wait(fs1->stat(*ino), 60_s);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->size, 1000u);
  EXPECT_EQ(info->name, "file");
}

TEST_F(FsFixture, UnalignedOverlappingWrites) {
  auto ino = tb.wait(fs1->create("patchwork"), 60_s);
  ASSERT_TRUE(ino.has_value());
  // Reference model in memory.
  Bytes model(12000, std::byte{0});
  struct Patch {
    std::uint64_t off;
    std::size_t len;
    std::uint64_t seed;
  };
  for (const auto& p : {Patch{100, 5000, 1}, Patch{4000, 5000, 2}, Patch{8191, 3809, 3},
                        Patch{0, 64, 4}, Patch{11000, 1000, 5}}) {
    Bytes chunk = make_pattern(p.len, p.seed);
    std::copy(chunk.begin(), chunk.end(), model.begin() + static_cast<long>(p.off));
    auto written = tb.wait(fs1->write(*ino, p.off, chunk), 60_s);
    ASSERT_TRUE(written.has_value()) << written.status().to_string();
  }
  Bytes out = file_read(*fs1, *ino, 0, 12000);
  EXPECT_EQ(out, model);
}

TEST_F(FsFixture, IndirectBlocksAndLargeFile) {
  auto ino = tb.wait(fs1->create("big"), 60_s);
  ASSERT_TRUE(ino.has_value());
  // 100 KiB starting at 50 KiB: spans direct and indirect mappings.
  Bytes data = make_pattern(100 * 1024, 77);
  auto written = tb.wait(fs1->write(*ino, 50 * 1024, data), 120_s);
  ASSERT_TRUE(written.has_value()) << written.status().to_string();
  Bytes out = file_read(*fs1, *ino, 50 * 1024, 100 * 1024);
  EXPECT_EQ(out, data);
  // The hole below 50 KiB reads as zeroes.
  Bytes hole = file_read(*fs1, *ino, 0, 4096);
  for (auto byte : hole) EXPECT_EQ(byte, std::byte{0});
}

TEST_F(FsFixture, FileSizeLimitEnforced) {
  auto ino = tb.wait(fs1->create("toolarge"), 60_s);
  ASSERT_TRUE(ino.has_value());
  EXPECT_EQ(tb.wait(fs1->write(*ino, kMaxFileBytes - 10, Bytes(100)), 60_s).error_code(),
            Errc::out_of_range);
}

TEST_F(FsFixture, ShortReadAtEof) {
  auto ino = tb.wait(fs1->create("short"), 60_s);
  ASSERT_TRUE(ino.has_value());
  ASSERT_TRUE(tb.wait(fs1->write(*ino, 0, make_pattern(100, 9)), 60_s).has_value());
  Bytes out = file_read(*fs1, *ino, 60, 1000);
  EXPECT_EQ(out.size(), 40u);
  Bytes past = file_read(*fs1, *ino, 200, 10);
  EXPECT_TRUE(past.empty());
}

TEST_F(FsFixture, RemoveFreesBlocksForReuse) {
  auto ino = tb.wait(fs1->create("victim"), 60_s);
  ASSERT_TRUE(ino.has_value());
  ASSERT_TRUE(tb.wait(fs1->write(*ino, 0, make_pattern(64 * 1024, 3)), 120_s).has_value());
  const std::uint64_t allocated = fs1->stats().blocks_allocated;
  EXPECT_GE(allocated, 17u);  // 16 data blocks + indirect
  ASSERT_TRUE(tb.wait(fs1->remove("victim"), 60_s).has_value());
  EXPECT_EQ(fs1->stats().blocks_freed, allocated);
}

TEST_F(FsFixture, CrossHostReadAfterWrite) {
  auto fs2 = mount_from(2);
  ASSERT_TRUE(fs2 != nullptr);

  auto ino = tb.wait(fs1->create("shared.dat"), 60_s);
  ASSERT_TRUE(ino.has_value());
  Bytes data = make_pattern(20000, 42);
  ASSERT_TRUE(tb.wait(fs1->write(*ino, 0, data), 120_s).has_value());

  // Host 2 finds and reads the file through its own queue pair.
  auto found = tb.wait(fs2->lookup("shared.dat"), 60_s);
  ASSERT_TRUE(found.has_value()) << found.status().to_string();
  Bytes out = file_read(*fs2, *found, 0, 20000);
  EXPECT_EQ(out, data);
}

TEST_F(FsFixture, CrossHostConcurrentCreatesAllSucceed) {
  auto fs2 = mount_from(2);
  ASSERT_TRUE(fs2 != nullptr);
  // Two hosts create distinct files concurrently: the cluster lock must
  // serialize the inode-table read-modify-write (no inode slot is assigned
  // twice).
  std::vector<sim::Future<Result<std::uint32_t>>> creates;
  for (int i = 0; i < 6; ++i) {
    creates.push_back(fs1->create("h1-" + std::to_string(i)));
    creates.push_back(fs2->create("h2-" + std::to_string(i)));
  }
  auto all_ready = [&] {
    for (auto& future : creates) {
      if (!future.ready()) return false;
    }
    return true;
  };
  const sim::Time give_up = tb.engine().now() + 30_s;
  while (!all_ready() && tb.engine().now() < give_up) tb.engine().run_for(1_ms);
  std::set<std::uint32_t> inodes;
  for (auto& future : creates) {
    ASSERT_TRUE(future.ready());
    auto ino = *future.try_take();
    ASSERT_TRUE(ino.has_value()) << ino.status().to_string();
    EXPECT_TRUE(inodes.insert(*ino).second) << "inode assigned twice";
  }
  auto listing = tb.wait(fs1->list(), 60_s);
  ASSERT_TRUE(listing.has_value());
  EXPECT_EQ(listing->size(), 12u);
}

TEST_F(FsFixture, RenameMovesAndProtectsTargets) {
  auto a = tb.wait(fs1->create("old-name"), 60_s);
  auto b = tb.wait(fs1->create("occupied"), 60_s);
  ASSERT_TRUE(a.has_value() && b.has_value());
  ASSERT_TRUE(tb.wait(fs1->write(*a, 0, make_pattern(4096, 9)), 60_s).has_value());

  EXPECT_EQ(tb.wait(fs1->rename("old-name", "occupied"), 60_s).error_code(),
            Errc::already_exists);
  EXPECT_EQ(tb.wait(fs1->rename("missing", "x"), 60_s).error_code(), Errc::not_found);

  auto renamed = tb.wait(fs1->rename("old-name", "new-name"), 60_s);
  ASSERT_TRUE(renamed.has_value()) << renamed.status().to_string();
  EXPECT_EQ(tb.wait(fs1->lookup("old-name"), 60_s).error_code(), Errc::not_found);
  auto found = tb.wait(fs1->lookup("new-name"), 60_s);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, *a);
  // Contents survive the rename.
  Bytes out = file_read(*fs1, *a, 0, 4096);
  EXPECT_TRUE(check_pattern(out, 9));
}

TEST_F(FsFixture, TruncateShrinkFreesBlocksAndZeroesTail) {
  auto ino = tb.wait(fs1->create("trunc"), 60_s);
  ASSERT_TRUE(ino.has_value());
  ASSERT_TRUE(tb.wait(fs1->write(*ino, 0, make_pattern(80 * 1024, 4)), 120_s).has_value());
  const std::uint64_t allocated = fs1->stats().blocks_allocated;

  // Shrink to 10000 bytes (mid-block): blocks past the end are freed.
  ASSERT_TRUE(tb.wait(fs1->truncate(*ino, 10'000), 60_s).has_value());
  auto info = tb.wait(fs1->stat(*ino), 60_s);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->size, 10'000u);
  EXPECT_GT(fs1->stats().blocks_freed, 0u);
  EXPECT_LT(fs1->stats().blocks_freed, allocated);  // kept the first 3 blocks

  // Grow back: the region past the old end must read as zeros, including
  // the tail of the boundary block that once held pattern bytes.
  ASSERT_TRUE(tb.wait(fs1->truncate(*ino, 20'000), 60_s).has_value());
  Bytes out = file_read(*fs1, *ino, 0, 20'000);
  ASSERT_EQ(out.size(), 20'000u);
  Bytes head = make_pattern(80 * 1024, 4);
  EXPECT_TRUE(std::equal(out.begin(), out.begin() + 10'000, head.begin()));
  for (std::size_t i = 10'000; i < out.size(); ++i) {
    ASSERT_EQ(out[i], std::byte{0}) << "stale byte at " << i;
  }
  // The filesystem is still consistent after all of this.
  auto report = tb.wait(fs1->check(), 120_s);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->consistent());
}

TEST_F(FsFixture, TruncateToZeroReleasesEverything) {
  auto ino = tb.wait(fs1->create("gone"), 60_s);
  ASSERT_TRUE(ino.has_value());
  ASSERT_TRUE(tb.wait(fs1->write(*ino, 0, make_pattern(100 * 1024, 5)), 120_s).has_value());
  const std::uint64_t allocated = fs1->stats().blocks_allocated;
  ASSERT_TRUE(tb.wait(fs1->truncate(*ino, 0), 60_s).has_value());
  EXPECT_EQ(fs1->stats().blocks_freed, allocated);  // data + indirect all freed
  auto report = tb.wait(fs1->check(), 120_s);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->consistent());
  EXPECT_EQ(report->referenced_blocks, 0u);
}

TEST_F(FsFixture, CheckIsCleanAfterChurn) {
  // Create, grow, delete, recreate — then the bitmap and the inode
  // mappings must agree exactly.
  for (int round = 0; round < 3; ++round) {
    auto a = tb.wait(fs1->create("churn-a"), 60_s);
    auto b = tb.wait(fs1->create("churn-b"), 60_s);
    ASSERT_TRUE(a.has_value() && b.has_value());
    ASSERT_TRUE(tb.wait(fs1->write(*a, 0, make_pattern(70 * 1024, round + 1)), 120_s)
                    .has_value());
    ASSERT_TRUE(tb.wait(fs1->write(*b, 8192, make_pattern(20 * 1024, round + 7)), 120_s)
                    .has_value());
    ASSERT_TRUE(tb.wait(fs1->remove("churn-a"), 60_s).has_value());
    auto report = tb.wait(fs1->check(), 120_s);
    ASSERT_TRUE(report.has_value()) << report.status().to_string();
    EXPECT_TRUE(report->consistent())
        << "leaked=" << report->leaked_blocks << " double=" << report->double_referenced
        << " missing=" << report->missing_allocations;
    EXPECT_EQ(report->files, 1u);
    ASSERT_TRUE(tb.wait(fs1->remove("churn-b"), 60_s).has_value());
  }
  auto final_report = tb.wait(fs1->check(), 120_s);
  ASSERT_TRUE(final_report.has_value());
  EXPECT_TRUE(final_report->consistent());
  EXPECT_EQ(final_report->files, 0u);
  EXPECT_EQ(final_report->referenced_blocks, 0u);
}

TEST_F(FsFixture, CheckDetectsCorruption) {
  auto ino = tb.wait(fs1->create("sane"), 60_s);
  ASSERT_TRUE(ino.has_value());
  ASSERT_TRUE(tb.wait(fs1->write(*ino, 0, make_pattern(4096, 1)), 60_s).has_value());

  // Corrupt on purpose: set a stray bit in the allocation bitmap through
  // the raw block device (simulating a torn metadata write).
  const Superblock& sb = fs1->superblock();
  const std::uint32_t spb = static_cast<std::uint32_t>(kFsBlockSize / client1->block_size());
  const std::uint64_t buf = *tb.cluster().alloc_dram(1, kFsBlockSize, 4096);
  auto rd = do_io(tb, *client1, {block::Op::read, sb.bitmap_start * spb, spb, buf});
  ASSERT_TRUE(rd.has_value() && rd->status.is_ok());
  Bytes bitmap(kFsBlockSize);
  ASSERT_TRUE(tb.fabric().host_dram(1).read(buf, bitmap).is_ok());
  bitmap[100] = std::byte{0xFF};  // 8 blocks nobody references
  ASSERT_TRUE(tb.fabric().host_dram(1).write(buf, bitmap).is_ok());
  auto wr = do_io(tb, *client1, {block::Op::write, sb.bitmap_start * spb, spb, buf});
  ASSERT_TRUE(wr.has_value() && wr->status.is_ok());

  auto report = tb.wait(fs1->check(), 120_s);
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->consistent());
  EXPECT_EQ(report->leaked_blocks, 8u);
}

TEST_F(FsFixture, MountRejectsUnformattedDevice) {
  // A second, unformatted region? Re-format check: point a mount at a
  // device whose block 0 is not a superblock — use a fresh testbed.
  Testbed other(small_testbed(2));
  auto stack = bring_up(other, 0, 1);
  ASSERT_TRUE(stack.has_value());
  auto mounted = other.wait(
      FileSystem::mount(other.cluster(), *stack->client, 1, 1, FileSystem::Config{}), 60_s);
  EXPECT_FALSE(mounted.has_value());
}

}  // namespace
}  // namespace nvmeshare::fs
