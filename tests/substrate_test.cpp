// Substrate-neutrality suite: the same driver stack brought up over both
// interconnect substrates — the paper's PCIe/NTB fabric and the CXL
// pooled-memory model — must attach, move data correctly, and recover from
// faults. Plus the debug-build backdoor seal guard: after bring-up no
// production path may cheat through zero-latency cross-host peek/poke.
#include <gtest/gtest.h>

#include <string>

#include "fabric/substrate.hpp"
#include "fault/fault.hpp"
#include "test_util.hpp"

namespace nvmeshare {
namespace {

using namespace testutil;

TestbedConfig substrate_testbed(fabric::SubstrateKind kind, std::uint32_t hosts) {
  TestbedConfig cfg = small_testbed(hosts);
  cfg.substrate = kind;
  return cfg;
}

class SubstrateTest : public ::testing::TestWithParam<fabric::SubstrateKind> {
 protected:
  [[nodiscard]] TestbedConfig config(std::uint32_t hosts) const {
    return substrate_testbed(GetParam(), hosts);
  }
};

// --- bring-up and data path --------------------------------------------------------

TEST_P(SubstrateTest, RemoteClientAttachesAndMovesData) {
  Testbed tb(config(2));
  auto stack = bring_up(tb, /*manager_node=*/0, /*client_node=*/1);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();

  // Production steady state: no more backdoor traffic from here on.
  tb.substrate().seal_backdoors();
  write_read_verify(tb, *stack->client, 1, /*lba=*/64, 4096, /*seed=*/0xAB);
  write_read_verify(tb, *stack->client, 1, /*lba=*/1024, 32 * 1024, /*seed=*/0xCD);
  EXPECT_EQ(tb.substrate().stats().backdoor_violations.value(), 0u);
}

TEST_P(SubstrateTest, LocalClientMovesData) {
  Testbed tb(config(1));
  auto stack = bring_up(tb, 0, 0);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  tb.substrate().seal_backdoors();
  write_read_verify(tb, *stack->client, 0, /*lba=*/8, 8192, /*seed=*/0x77);
  EXPECT_EQ(tb.substrate().stats().backdoor_violations.value(), 0u);
}

TEST_P(SubstrateTest, TwoClientsShareOneDevice) {
  Testbed tb(config(3));
  auto mgr = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), {}));
  ASSERT_TRUE(mgr.has_value()) << mgr.status().to_string();
  auto c1 = tb.wait(driver::Client::attach(tb.service(), 1, tb.device_id(), {}));
  ASSERT_TRUE(c1.has_value()) << c1.status().to_string();
  auto c2 = tb.wait(driver::Client::attach(tb.service(), 2, tb.device_id(), {}));
  ASSERT_TRUE(c2.has_value()) << c2.status().to_string();

  tb.substrate().seal_backdoors();
  // Disjoint LBA ranges; each client must read back its own pattern.
  write_read_verify(tb, **c1, 1, /*lba=*/0, 16 * 1024, /*seed=*/0x11);
  write_read_verify(tb, **c2, 2, /*lba=*/4096, 16 * 1024, /*seed=*/0x22);
  EXPECT_EQ(tb.substrate().stats().backdoor_violations.value(), 0u);
}

// --- recovery ----------------------------------------------------------------------

// A link flap mid-workload: commands in flight time out, the client runs
// queue-level recovery, and verified I/O passes once the link is back. The
// same plan drives the NTB cable-pull path and the CXL port-down path
// through Substrate::set_host_link.
TEST_P(SubstrateTest, RecoversFromLinkFlap) {
  auto plan = fault::parse_plan("seed=11;ntb_link_down:host=1,at=300us,for=400us");
  ASSERT_TRUE(plan.has_value()) << plan.status().to_string();
  fault::Injector::global().configure(std::move(*plan));

  driver::Client::Config cc;
  cc.cmd_timeout_ns = 500'000;
  cc.cmd_retry_limit = 5;
  cc.retry_backoff_ns = 50'000;

  Testbed tb(config(2));
  auto stack = bring_up(tb, 0, 1, cc);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();

  fabric::Substrate* sub = &tb.substrate();
  fault::Injector::global().arm(tb.engine(),
                                {.set_ntb_link = [sub](std::uint32_t host, bool up) {
                                  (void)sub->set_host_link(host, up);
                                }});

  workload::JobSpec spec;
  spec.name = "linkflap";
  spec.pattern = workload::JobSpec::Pattern::randrw;
  spec.block_bytes = 4096;
  spec.queue_depth = 4;
  spec.ops = 2000;
  spec.seed = 99;
  spec.verify = true;
  auto result = workload::run_job_blocking(tb.cluster(), *stack->client, 1, spec);
  fault::Injector::global().disarm();
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_EQ(result->verify_failures, 0u);

  // The flap actually happened, and the stack survived it.
  write_read_verify(tb, *stack->client, 1, /*lba=*/2048, 4096, /*seed=*/0x5A);
}

INSTANTIATE_TEST_SUITE_P(AllSubstrates, SubstrateTest,
                         ::testing::Values(fabric::SubstrateKind::ntb,
                                           fabric::SubstrateKind::cxl),
                         [](const auto& info) {
                           return std::string(fabric::substrate_name(info.param));
                         });

// --- backdoor seal guard (satellite: debug-build peek/poke assertion) --------------

class BackdoorGuardTest : public ::testing::TestWithParam<fabric::SubstrateKind> {};

TEST_P(BackdoorGuardTest, SealedCrossHostBackdoorIsRejected) {
#ifdef NDEBUG
  GTEST_SKIP() << "backdoor guard compiles out in release builds";
#else
  Testbed tb(substrate_testbed(GetParam(), 2));
  fabric::Substrate& sub = tb.substrate();

  // A window from host 1 onto the device's BAR (the device lives in host
  // 0): a backdoor access through it crosses hosts on both substrates —
  // through the NTB aperture on PCIe, over CXL.io p2p on the pool.
  auto ref = tb.service().acquire(tb.device_id(), smartio::AcquireMode::shared);
  ASSERT_TRUE(ref.has_value()) << ref.status().to_string();
  auto bar = ref->map_bar(/*node=*/1, /*bar=*/0);
  ASSERT_TRUE(bar.has_value()) << bar.status().to_string();
  const std::uint64_t cap_addr = bar->addr() + nvme::reg::kCap;

  // Unsealed (bring-up): cross-host peek is allowed and reads the register.
  Bytes got(8);
  ASSERT_TRUE(sub.peek(1, cap_addr, got).is_ok());
  EXPECT_NE(load_pod<std::uint64_t>(got), 0u);
  const std::uint64_t violations_before = sub.stats().backdoor_violations.value();

  sub.seal_backdoors();

  // Same-host backdoor access stays legal (test assertions on local state).
  auto addr = tb.cluster().alloc_dram(/*node=*/1, 4096, 4096);
  ASSERT_TRUE(addr.has_value());
  Bytes word(8, std::byte{0x42});
  EXPECT_TRUE(sub.poke(1, *addr, word).is_ok());
  EXPECT_TRUE(sub.peek(1, *addr, got).is_ok());

  // Cross-host access is now a contract violation: rejected and counted.
  Status st = sub.peek(1, cap_addr, got);
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st, Status(Errc::permission_denied, ""));
  st = sub.peek(1, cap_addr, got);
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(sub.stats().backdoor_violations.value(), violations_before + 2);

  // unseal (e.g. for a post-mortem dump) restores the bring-up behavior.
  sub.unseal_backdoors();
  EXPECT_TRUE(sub.peek(1, cap_addr, got).is_ok());
#endif
}

// The production stack itself must never trip the guard: a full bring-up,
// I/O, and teardown with sealed backdoors records zero violations. (The
// remote-client data-path test above also checks this; this one pins the
// manager-side admin path on host 0.)
TEST_P(BackdoorGuardTest, ProductionPathsStaySealedClean) {
#ifdef NDEBUG
  GTEST_SKIP() << "backdoor guard compiles out in release builds";
#else
  Testbed tb(substrate_testbed(GetParam(), 2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  tb.substrate().seal_backdoors();

  write_read_verify(tb, *stack->client, 1, /*lba=*/512, 16 * 1024, /*seed=*/0x3C);

  EXPECT_EQ(tb.substrate().stats().backdoor_violations.value(), 0u);
#endif
}

INSTANTIATE_TEST_SUITE_P(AllSubstrates, BackdoorGuardTest,
                         ::testing::Values(fabric::SubstrateKind::ntb,
                                           fabric::SubstrateKind::cxl),
                         [](const auto& info) {
                           return std::string(fabric::substrate_name(info.param));
                         });

}  // namespace
}  // namespace nvmeshare
