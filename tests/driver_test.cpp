// Unit tests for the distributed driver pieces: cost model, interrupt
// controller, manager/client mailbox protocol, queue-pair accounting,
// bounce-buffer behaviour, failure handling.
#include <gtest/gtest.h>

#include <cstddef>

#include "driver/irq.hpp"
#include "test_util.hpp"

namespace nvmeshare::driver {
namespace {

using namespace testutil;

TEST(CostModel, PresetsEncodeThePaperRelationships) {
  const CostModel stock = CostModel::stock_linux();
  const CostModel ours = CostModel::distributed_driver();
  const CostModel spdk = CostModel::spdk();
  // "our driver implementation is naive ... higher baseline latency".
  EXPECT_GT(ours.submit_ns, stock.submit_ns);
  EXPECT_GT(ours.completion_ns, stock.completion_ns);
  // The SISCI extension does not support interrupts: ours must poll.
  EXPECT_GT(ours.poll_interval_ns, 0);
  EXPECT_EQ(stock.poll_interval_ns, 0);  // interrupt driven
  // SPDK's polling target is the leanest.
  EXPECT_LT(spdk.submit_ns, stock.submit_ns);
}

TEST(CostModel, MemcpyAndJitter) {
  const CostModel m = CostModel::distributed_driver();
  EXPECT_NEAR(static_cast<double>(m.memcpy_ns(4096)), 4096.0 / m.memcpy_bytes_per_ns, 1.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto j = m.jittered(1000, rng);
    EXPECT_GT(j, 500);
    EXPECT_LT(j, 2500);
  }
  EXPECT_EQ(m.jittered(0, rng), 0);
}

TEST(IrqController, DeliversToHandler) {
  Testbed tb(small_testbed(1));
  IrqController& irq = tb.irq(0);
  std::uint32_t got = 0;
  auto vec = irq.allocate_vector([&](std::uint32_t data) { got = data; });
  ASSERT_TRUE(vec.has_value());
  auto addr = irq.vector_address(*vec);
  ASSERT_TRUE(addr.has_value());

  Bytes msg(4);
  store_pod(msg, std::uint32_t{0xfeedf00d});
  ASSERT_TRUE(tb.fabric().post_write(tb.fabric().cpu(0), *addr, std::move(msg)).has_value());
  tb.engine().run();
  EXPECT_EQ(got, 0xfeedf00du);
  EXPECT_EQ(irq.interrupts_delivered(), 1u);

  irq.release_vector(*vec);
  Bytes again(4);
  store_pod(again, std::uint32_t{1});
  (void)tb.fabric().post_write(tb.fabric().cpu(0), *addr, std::move(again));
  tb.engine().run();
  EXPECT_EQ(irq.interrupts_delivered(), 1u);  // released vector is silent
}

TEST(Mailbox, WireFormatInvariants) {
  EXPECT_EQ(sizeof(MboxSlot), 128u);
  EXPECT_EQ(sizeof(MetadataHeader), 56u);
  MetadataHeader h;
  h.mailbox_offset = 4096;
  EXPECT_EQ(mbox_slot_offset(h, 0), 4096u);
  EXPECT_EQ(mbox_slot_offset(h, 3), 4096u + 3 * 128);
  EXPECT_EQ(metadata_segment_size(32), 4096u + 32 * 128);
}

TEST(Manager, PublishesCorrectMetadata) {
  Testbed tb(small_testbed(2));
  auto mgr = tb.wait(Manager::start(tb.service(), 0, tb.device_id(), {}));
  ASSERT_TRUE(mgr.has_value()) << mgr.status().to_string();
  const MetadataHeader& h = (*mgr)->header();
  EXPECT_EQ(h.magic, kMetadataMagic);
  EXPECT_EQ(h.manager_node, 0u);
  EXPECT_EQ(h.device_id, tb.device_id());
  EXPECT_EQ(h.capacity_blocks, tb.config().nvme.capacity_blocks);
  EXPECT_EQ(h.block_size, 512u);
  EXPECT_EQ(h.granted_io_queues, 31u);
  EXPECT_EQ(h.mailbox_slots, 2u);
  auto meta = tb.service().device_metadata(tb.device_id());
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->first, 0u);
}

TEST(Manager, QueuePairAccounting) {
  Testbed tb(small_testbed(3));
  auto mgr = tb.wait(Manager::start(tb.service(), 0, tb.device_id(), {}));
  ASSERT_TRUE(mgr.has_value());
  EXPECT_EQ((*mgr)->active_queue_pairs(), 1u);  // admin only

  auto c1 = tb.wait(Client::attach(tb.service(), 1, tb.device_id(), {}));
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ((*mgr)->active_queue_pairs(), 2u);
  EXPECT_EQ((*mgr)->stats().qps_created, 1u);

  Status st = tb.wait_status((*c1)->detach());
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_EQ((*mgr)->active_queue_pairs(), 1u);
  EXPECT_EQ((*mgr)->stats().qps_deleted, 1u);
}

TEST(Manager, ShutdownStopsServingButIoContinues) {
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value());
  stack->manager->shutdown();
  tb.engine().run_for(1_ms);

  // Established queue pairs keep working: the client operates the
  // controller independently of the manager (Section V).
  write_read_verify(tb, *stack->client, 1, 100, 4096, 0x5151);

  // But new clients cannot attach (no metadata registration).
  driver::Client::Config cc;
  cc.mailbox_timeout_ns = 5_ms;
  auto late = tb.wait(Client::attach(tb.service(), 0, tb.device_id(), cc), 60_s);
  EXPECT_FALSE(late.has_value());
}

// Drive the mailbox protocol by hand (no Client) to exercise the manager's
// validation paths.
struct RawMailbox {
  explicit RawMailbox(Testbed& tb, const MetadataHeader& header) : tb_(tb) {
    auto loc = tb.service().device_metadata(tb.device_id());
    EXPECT_TRUE(loc.has_value());
    auto remote = tb.cluster().connect(loc->first, loc->second);
    EXPECT_TRUE(remote.has_value());
    auto map = sisci::Map::create(tb.cluster(), 1, *remote);
    EXPECT_TRUE(map.has_value());
    map_ = std::move(*map);
    slot_addr_ = map_.addr() + mbox_slot_offset(header, 1);
  }

  /// Post `slot` from node 1 and wait for the manager's response.
  MboxSlot call(MboxSlot slot) {
    slot.client_node = 1;
    slot.state = static_cast<std::uint32_t>(MboxState::request);
    Bytes buf(sizeof(MboxSlot));
    store_pod(buf, slot);
    EXPECT_TRUE(tb_.fabric().post_write(tb_.fabric().cpu(1), slot_addr_, std::move(buf))
                    .has_value());
    const sim::Time give_up = tb_.engine().now() + 1_s;
    MboxSlot response;
    while (tb_.engine().now() < give_up) {
      tb_.engine().run_until(tb_.engine().now() + 10_us);
      EXPECT_TRUE(tb_.fabric().peek(1, slot_addr_, as_writable_bytes_of(response)).is_ok());
      if (response.state == static_cast<std::uint32_t>(MboxState::done)) break;
    }
    // Hand the slot back for the next call.
    Bytes free_word(4);
    store_pod(free_word, static_cast<std::uint32_t>(MboxState::free));
    (void)tb_.fabric().post_write(tb_.fabric().cpu(1), slot_addr_, std::move(free_word));
    tb_.engine().run_for(10_us);
    return response;
  }

  Testbed& tb_;
  sisci::Map map_;
  std::uint64_t slot_addr_ = 0;
};

TEST(Manager, MailboxValidatesRequests) {
  Testbed tb(small_testbed(2));
  auto mgr = tb.wait(Manager::start(tb.service(), 0, tb.device_id(), {}));
  ASSERT_TRUE(mgr.has_value());
  RawMailbox mbox(tb, (*mgr)->header());

  // Unknown opcode -> protocol error.
  MboxSlot bogus;
  bogus.op = 99;
  auto r1 = mbox.call(bogus);
  EXPECT_EQ(static_cast<Errc>(r1.status), Errc::protocol_error);

  // create_qp with null addresses / zero sizes -> invalid argument.
  MboxSlot bad_create;
  bad_create.op = static_cast<std::uint32_t>(MboxOp::create_qp);
  bad_create.sq_size = 0;
  bad_create.cq_size = 0;
  auto r2 = mbox.call(bad_create);
  EXPECT_EQ(static_cast<Errc>(r2.status), Errc::invalid_argument);

  // delete_qp for a queue this node does not own -> permission denied.
  MboxSlot bad_delete;
  bad_delete.op = static_cast<std::uint32_t>(MboxOp::delete_qp);
  bad_delete.qid_in = 7;
  auto r3 = mbox.call(bad_delete);
  EXPECT_EQ(static_cast<Errc>(r3.status), Errc::permission_denied);

  // ping is answered ok.
  MboxSlot ping;
  ping.op = static_cast<std::uint32_t>(MboxOp::ping);
  auto r4 = mbox.call(ping);
  EXPECT_EQ(static_cast<Errc>(r4.status), Errc::ok);

  EXPECT_EQ((*mgr)->stats().request_errors, 3u);
  EXPECT_EQ((*mgr)->stats().mailbox_requests, 4u);
  // No queue pairs were created by any of this.
  EXPECT_EQ((*mgr)->active_queue_pairs(), 1u);
  EXPECT_FALSE(tb.controller().is_fatal());
}

TEST(Manager, QueueExhaustionReportedOverMailbox) {
  // Grant only 2 I/O queues; the third create_qp must fail cleanly.
  Testbed tb(small_testbed(2));
  Manager::Config mc;
  mc.requested_io_queues = 2;
  auto mgr = tb.wait(Manager::start(tb.service(), 0, tb.device_id(), mc));
  ASSERT_TRUE(mgr.has_value());
  EXPECT_EQ((*mgr)->header().granted_io_queues, 2u);
  RawMailbox mbox(tb, (*mgr)->header());

  // Two honest-looking queue pairs (queue memory in host 0 DRAM).
  for (int i = 0; i < 2; ++i) {
    MboxSlot create;
    create.op = static_cast<std::uint32_t>(MboxOp::create_qp);
    create.sq_size = 16;
    create.cq_size = 16;
    create.sq_device_addr = *tb.cluster().alloc_dram(0, 16 * 64, 4096);
    create.cq_device_addr = *tb.cluster().alloc_dram(0, 16 * 16, 4096);
    auto r = mbox.call(create);
    ASSERT_EQ(static_cast<Errc>(r.status), Errc::ok);
    EXPECT_EQ(r.qid_out, i + 1);
  }
  MboxSlot third;
  third.op = static_cast<std::uint32_t>(MboxOp::create_qp);
  third.sq_size = 16;
  third.cq_size = 16;
  third.sq_device_addr = *tb.cluster().alloc_dram(0, 16 * 64, 4096);
  third.cq_device_addr = *tb.cluster().alloc_dram(0, 16 * 16, 4096);
  auto r = mbox.call(third);
  EXPECT_EQ(static_cast<Errc>(r.status), Errc::resource_exhausted);
  EXPECT_EQ((*mgr)->active_queue_pairs(), 3u);  // admin + 2
}

TEST(Client, RejectsBadConfig) {
  Testbed tb(small_testbed(2));
  auto mgr = tb.wait(Manager::start(tb.service(), 0, tb.device_id(), {}));
  ASSERT_TRUE(mgr.has_value());
  Client::Config cc;
  cc.queue_depth = 0;
  auto c = tb.wait(Client::attach(tb.service(), 1, tb.device_id(), cc));
  EXPECT_FALSE(c.has_value());
  EXPECT_EQ(c.error_code(), Errc::invalid_argument);

  cc = Client::Config{};
  cc.slot_bytes = 1000;  // not page aligned
  c = tb.wait(Client::attach(tb.service(), 1, tb.device_id(), cc));
  EXPECT_FALSE(c.has_value());
  EXPECT_EQ(c.error_code(), Errc::invalid_argument);

  cc = Client::Config{};
  cc.slot_bytes = 4 * KiB + 512;  // page multiple plus a sub-page remainder
  c = tb.wait(Client::attach(tb.service(), 1, tb.device_id(), cc));
  EXPECT_FALSE(c.has_value());
  EXPECT_EQ(c.error_code(), Errc::invalid_argument);
}

TEST(Client, AttachWithoutManagerTimesOut) {
  Testbed tb(small_testbed(2));
  auto c = tb.wait(Client::attach(tb.service(), 1, tb.device_id(), {}), 60_s);
  EXPECT_FALSE(c.has_value());
  EXPECT_EQ(c.error_code(), Errc::unavailable);
}

/// Overwrite one 32-bit word of the published metadata header, simulating a
/// manager that speaks a different protocol revision.
void poke_metadata_u32(Testbed& tb, std::uint64_t offset, std::uint32_t value) {
  auto loc = tb.service().device_metadata(tb.device_id());
  ASSERT_TRUE(loc.has_value());
  auto remote = tb.cluster().connect(loc->first, loc->second);
  ASSERT_TRUE(remote.has_value());
  auto map = sisci::Map::create(tb.cluster(), 1, *remote);
  ASSERT_TRUE(map.has_value());
  Bytes word(4);
  store_pod(word, value);
  ASSERT_TRUE(
      tb.fabric().post_write(tb.fabric().cpu(1), map->addr() + offset, std::move(word))
          .has_value());
  tb.engine().run_for(10_us);
}

TEST(Client, VersionMismatchRefusedCleanly) {
  // v3<->v4 (and any other disagreement) must come back as a clean
  // `unsupported` error in both directions — never a misparsed slot.
  Testbed tb(small_testbed(2));
  auto mgr = tb.wait(Manager::start(tb.service(), 0, tb.device_id(), {}));
  ASSERT_TRUE(mgr.has_value());
  const std::uint64_t version_off = offsetof(MetadataHeader, version);

  // Manager older than the client (a v3 manager, this v4 client).
  poke_metadata_u32(tb, version_off, 3);
  auto c = tb.wait(Client::attach(tb.service(), 1, tb.device_id(), {}));
  ASSERT_FALSE(c.has_value());
  EXPECT_EQ(c.error_code(), Errc::unsupported);

  // Manager newer than the client (the other direction of the handshake).
  poke_metadata_u32(tb, version_off, kMetadataVersion + 1);
  c = tb.wait(Client::attach(tb.service(), 1, tb.device_id(), {}));
  ASSERT_FALSE(c.has_value());
  EXPECT_EQ(c.error_code(), Errc::unsupported);

  // Restored version: the same client attaches fine — nothing was wedged.
  poke_metadata_u32(tb, version_off, kMetadataVersion);
  c = tb.wait(Client::attach(tb.service(), 1, tb.device_id(), {}));
  EXPECT_TRUE(c.has_value()) << c.status().to_string();
}

TEST(Client, CorruptMagicIsProtocolError) {
  Testbed tb(small_testbed(2));
  auto mgr = tb.wait(Manager::start(tb.service(), 0, tb.device_id(), {}));
  ASSERT_TRUE(mgr.has_value());
  poke_metadata_u32(tb, 0, 0xdeadbeef);  // clobber the low magic word
  auto c = tb.wait(Client::attach(tb.service(), 1, tb.device_id(), {}));
  ASSERT_FALSE(c.has_value());
  EXPECT_EQ(c.error_code(), Errc::protocol_error);
}

TEST(Manager, QosGrantDemotesToFirstAllowedClass) {
  // Policy: urgent and high are operator-only, medium is capped. A client
  // asking for high must come back demoted to medium with clamped budgets,
  // which arms its token-bucket pacer.
  Testbed tb(small_testbed(2));
  Manager::Config mc;
  mc.enable_wrr = true;
  mc.qos_policy.classes[0].allowed = 0;
  mc.qos_policy.classes[1].allowed = 0;
  mc.qos_policy.classes[2].max_iops = 1000;
  auto mgr = tb.wait(Manager::start(tb.service(), 0, tb.device_id(), mc));
  ASSERT_TRUE(mgr.has_value());

  Client::Config cc;
  cc.qos_class = nvme::SqPriority::high;
  cc.qos_iops = 5000;  // above the medium-class cap: must clamp to 1000
  auto c = tb.wait(Client::attach(tb.service(), 1, tb.device_id(), cc));
  ASSERT_TRUE(c.has_value()) << c.status().to_string();
  EXPECT_TRUE((*c)->io_engine().qos_enabled())
      << "a clamped IOPS budget must arm the client pacer";
  write_read_verify(tb, **c, 1, 500, 4096, 0x9a9a);
}

TEST(Manager, QosGrantRejectedWhenNoClassAdmits) {
  // Nothing at or below the requested priority admits the client: the
  // grant is refused outright, and the refusal reaches attach() intact.
  Testbed tb(small_testbed(2));
  Manager::Config mc;
  mc.enable_wrr = true;
  mc.qos_policy.classes[3].allowed = 0;
  auto mgr = tb.wait(Manager::start(tb.service(), 0, tb.device_id(), mc));
  ASSERT_TRUE(mgr.has_value());

  Client::Config cc;
  cc.qos_class = nvme::SqPriority::low;
  auto c = tb.wait(Client::attach(tb.service(), 1, tb.device_id(), cc));
  ASSERT_FALSE(c.has_value());
  EXPECT_EQ(c.error_code(), Errc::permission_denied);
  EXPECT_EQ((*mgr)->active_queue_pairs(), 1u) << "no queue pair may leak from a refusal";
}

TEST(Manager, DefaultPolicyGrantsUncappedAndLeavesPacerDisarmed) {
  // The all-defaults path: every class allowed, no caps, no budgets asked.
  // The grant must leave the client's pacer disarmed — this is the
  // byte-identical seed configuration.
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value());
  EXPECT_FALSE(stack->client->io_engine().qos_enabled());
  EXPECT_EQ(stack->client->io_engine().qos_deferred_cmds(), 0u);
}

TEST(Client, RequestBiggerThanSlotRejected) {
  Testbed tb(small_testbed(2));
  Client::Config cc;
  cc.slot_bytes = 8 * KiB;
  auto stack = bring_up(tb, 0, 1, cc);
  ASSERT_TRUE(stack.has_value());
  EXPECT_EQ(stack->client->max_transfer_bytes(), 8 * KiB);
  const std::uint64_t buf = alloc_pattern_buffer(tb, 1, 16 * KiB, 1);
  auto completion = do_io(tb, *stack->client, {block::Op::write, 0, 32, buf});
  ASSERT_TRUE(completion.has_value());
  EXPECT_EQ(completion->status.code(), Errc::invalid_argument);

  // Reads are bounced through the same slot and fail the same way; the
  // rejection happens at submit, before any slot is occupied.
  completion = do_io(tb, *stack->client, {block::Op::read, 0, 32, buf});
  ASSERT_TRUE(completion.has_value());
  EXPECT_EQ(completion->status.code(), Errc::invalid_argument);

  // A request that exactly fills the slot still goes through.
  completion = do_io(tb, *stack->client, {block::Op::write, 0, 16, buf});
  ASSERT_TRUE(completion.has_value());
  EXPECT_TRUE(completion->status.is_ok()) << completion->status.to_string();
}

TEST(Client, BounceCopiesAreCounted) {
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value());
  write_read_verify(tb, *stack->client, 1, 300, 4096, 0x7c7c);
  // One copy on the write submission path, one on the read completion path.
  EXPECT_EQ(stack->client->stats().bounce_copies, 2u);
  EXPECT_EQ(stack->client->stats().bounce_copy_bytes, 8192u);
}

TEST(Client, QueueDepthLimitsInflight) {
  Testbed tb(small_testbed(2));
  Client::Config cc;
  cc.queue_depth = 2;
  auto stack = bring_up(tb, 0, 1, cc);
  ASSERT_TRUE(stack.has_value());

  workload::JobSpec spec;
  spec.pattern = workload::JobSpec::Pattern::randread;
  spec.ops = 50;
  spec.queue_depth = 8;  // more workers than device slots: they must queue
  auto result = tb.wait(workload::run_job(tb.cluster(), *stack->client, 1, spec), 60_s);
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_EQ(result->ops_completed, 50u);
  EXPECT_EQ(result->errors, 0u);
}

TEST(LocalDriver, PolledModeWorksWithoutIrq) {
  Testbed tb(small_testbed(1));
  LocalDriver::Config cfg;
  cfg.use_interrupts = false;
  auto drv = tb.wait(LocalDriver::start(tb.cluster(), tb.nvme_endpoint(), nullptr, cfg));
  ASSERT_TRUE(drv.has_value()) << drv.status().to_string();
  write_read_verify(tb, **drv, 0, 500, 4096, 0x9e9e);
  EXPECT_EQ((*drv)->stats().interrupts, 0u);
}

TEST(LocalDriver, InterruptModeNeedsIrqController) {
  Testbed tb(small_testbed(1));
  LocalDriver::Config cfg;
  cfg.use_interrupts = true;
  auto drv = tb.wait(LocalDriver::start(tb.cluster(), tb.nvme_endpoint(), nullptr, cfg));
  EXPECT_FALSE(drv.has_value());
  EXPECT_EQ(drv.error_code(), Errc::invalid_argument);
}

TEST(LocalDriver, UnalignedBufferOffsetsWork) {
  Testbed tb(small_testbed(1));
  auto drv = tb.wait(LocalDriver::start(tb.cluster(), tb.nvme_endpoint(), &tb.irq(0), {}));
  ASSERT_TRUE(drv.has_value());
  // A buffer starting mid-page: PRP1 carries the offset.
  auto base = tb.cluster().alloc_dram(0, 3 * 4096, 4096);
  ASSERT_TRUE(base.has_value());
  const std::uint64_t buf = *base + 512;
  Bytes data = make_pattern(4096, 0xAB);
  ASSERT_TRUE(tb.fabric().host_dram(0).write(buf, data).is_ok());
  auto wr = do_io(tb, **drv, {block::Op::write, 900, 8, buf});
  ASSERT_TRUE(wr.has_value() && wr->status.is_ok()) << wr->status.to_string();

  const std::uint64_t rbuf = *base + 4096 + 512;
  auto rd = do_io(tb, **drv, {block::Op::read, 900, 8, rbuf});
  ASSERT_TRUE(rd.has_value() && rd->status.is_ok());
  Bytes out(4096);
  ASSERT_TRUE(tb.fabric().host_dram(0).read(rbuf, out).is_ok());
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace nvmeshare::driver
