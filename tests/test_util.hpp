// Shared helpers for the test suite: small testbed configurations (tiny
// namespace, fast enable) and bring-up shortcuts for the distributed driver
// stack.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "driver/client.hpp"
#include "driver/local_driver.hpp"
#include "driver/manager.hpp"
#include "workload/fio.hpp"
#include "workload/testbed.hpp"

namespace nvmeshare::testutil {

using workload::Testbed;
using workload::TestbedConfig;

inline nvme::Controller::Config small_nvme(std::uint64_t seed = 7) {
  nvme::Controller::Config c;
  c.capacity_blocks = 1ull << 20;  // 512 MiB at 512 B blocks
  c.seed = seed;
  return c;
}

inline TestbedConfig small_testbed(std::uint32_t hosts) {
  TestbedConfig cfg;
  cfg.hosts = hosts;
  cfg.dram_per_host = 1 * GiB;
  cfg.nvme = small_nvme();
  return cfg;
}

struct Stack {
  std::unique_ptr<driver::Manager> manager;
  std::unique_ptr<driver::Client> client;
};

/// Start a manager on `manager_node` and attach a client from `client_node`.
inline Result<Stack> bring_up(Testbed& tb, smartio::NodeId manager_node,
                              smartio::NodeId client_node,
                              driver::Client::Config client_cfg = {},
                              driver::Manager::Config manager_cfg = {}) {
  auto manager = tb.wait(driver::Manager::start(tb.service(), manager_node, tb.device_id(),
                                                manager_cfg));
  if (!manager) return manager.status();
  auto client =
      tb.wait(driver::Client::attach(tb.service(), client_node, tb.device_id(), client_cfg));
  if (!client) return client.status();
  return Stack{std::move(*manager), std::move(*client)};
}

/// Submit one block request and run the engine until it completes.
inline Result<block::Completion> do_io(Testbed& tb, block::BlockDevice& dev,
                                       const block::Request& request) {
  return tb.wait_plain(dev.submit(request), 30_s);
}

/// Allocate a DRAM buffer on `node` and fill it with `seed`'s pattern.
inline std::uint64_t alloc_pattern_buffer(Testbed& tb, sisci::NodeId node, std::size_t bytes,
                                          std::uint64_t seed) {
  auto addr = tb.cluster().alloc_dram(node, align_up(bytes, 4096), 4096);
  EXPECT_TRUE(addr.has_value());
  Bytes data = make_pattern(bytes, seed);
  EXPECT_TRUE(tb.substrate().host_dram(node).write(*addr, data).is_ok());
  return *addr;
}

inline bool buffer_matches(Testbed& tb, sisci::NodeId node, std::uint64_t addr,
                           std::size_t bytes, std::uint64_t seed) {
  Bytes data(bytes);
  if (!tb.substrate().host_dram(node).read(addr, data)) return false;
  return check_pattern(data, seed);
}

/// Round-trip one write+read of `bytes` through `dev` and verify contents.
inline void write_read_verify(Testbed& tb, block::BlockDevice& dev, sisci::NodeId node,
                              std::uint64_t lba, std::size_t bytes, std::uint64_t seed) {
  const auto nblocks = static_cast<std::uint32_t>(bytes / dev.block_size());
  const std::uint64_t wbuf = alloc_pattern_buffer(tb, node, bytes, seed);
  auto wr = do_io(tb, dev, {block::Op::write, lba, nblocks, wbuf});
  ASSERT_TRUE(wr.has_value()) << wr.status().to_string();
  ASSERT_TRUE(wr->status.is_ok()) << wr->status.to_string();

  const std::uint64_t rbuf = alloc_pattern_buffer(tb, node, bytes, ~seed);
  auto rd = do_io(tb, dev, {block::Op::read, lba, nblocks, rbuf});
  ASSERT_TRUE(rd.has_value()) << rd.status().to_string();
  ASSERT_TRUE(rd->status.is_ok()) << rd->status.to_string();
  EXPECT_TRUE(buffer_matches(tb, node, rbuf, bytes, seed))
      << "data read back differs from data written";
  (void)tb.cluster().free_dram(node, wbuf);
  (void)tb.cluster().free_dram(node, rbuf);
}

}  // namespace nvmeshare::testutil
