// Unit tests for the RDMA/InfiniBand model: MR protection, SEND/RECV,
// one-sided operations, FIFO ordering, RNR behaviour.
#include <gtest/gtest.h>

#include "rdma/rdma.hpp"
#include "test_util.hpp"

namespace nvmeshare::rdma {
namespace {

struct RdmaFixture : ::testing::Test {
  RdmaFixture() : tb(testutil::small_testbed(2)), net(tb.network()) {
    ctx0 = std::make_unique<Context>(net, 0);
    ctx1 = std::make_unique<Context>(net, 1);
    cq0 = std::make_unique<CompletionQueue>(tb.engine());
    cq1 = std::make_unique<CompletionQueue>(tb.engine());
    auto [a, b] = net.create_qp_pair(*ctx0, *cq0, *ctx1, *cq1);
    qp0 = a;
    qp1 = b;
    buf0 = *tb.cluster().alloc_dram(0, 64 * KiB, 4096);
    buf1 = *tb.cluster().alloc_dram(1, 64 * KiB, 4096);
    EXPECT_TRUE(ctx0->register_mr(buf0, 64 * KiB).is_ok());
    EXPECT_TRUE(ctx1->register_mr(buf1, 64 * KiB).is_ok());
  }

  std::optional<WorkCompletion> drain_one(CompletionQueue& cq, sim::Duration bound = 1_ms) {
    const sim::Time give_up = tb.engine().now() + bound;
    while (tb.engine().now() < give_up) {
      if (auto wc = cq.poll()) return wc;
      tb.engine().run_until(tb.engine().now() + 1_us);
    }
    return std::nullopt;
  }

  testutil::Testbed tb;
  Network& net;
  std::unique_ptr<Context> ctx0, ctx1;
  std::unique_ptr<CompletionQueue> cq0, cq1;
  QueuePair* qp0 = nullptr;
  QueuePair* qp1 = nullptr;
  std::uint64_t buf0 = 0, buf1 = 0;
};

TEST_F(RdmaFixture, SendRecvDeliversPayload) {
  Bytes msg = make_pattern(256, 1);
  ASSERT_TRUE(tb.fabric().host_dram(0).write(buf0, msg).is_ok());
  ASSERT_TRUE(qp1->post_recv(100, buf1, 4096).is_ok());
  ASSERT_TRUE(qp0->post_send(200, buf0, 256).is_ok());

  auto recv = drain_one(*cq1);
  ASSERT_TRUE(recv.has_value());
  EXPECT_EQ(recv->wr_id, 100u);
  EXPECT_EQ(recv->byte_len, 256u);
  EXPECT_TRUE(recv->status.is_ok());
  Bytes out(256);
  ASSERT_TRUE(tb.fabric().host_dram(1).read(buf1, out).is_ok());
  EXPECT_EQ(out, msg);

  auto send = drain_one(*cq0);
  ASSERT_TRUE(send.has_value());
  EXPECT_EQ(send->wr_id, 200u);
  EXPECT_TRUE(send->status.is_ok());
}

TEST_F(RdmaFixture, SendSnapshotsAtPostTime) {
  Bytes msg = make_pattern(64, 2);
  ASSERT_TRUE(tb.fabric().host_dram(0).write(buf0, msg).is_ok());
  ASSERT_TRUE(qp1->post_recv(1, buf1, 4096).is_ok());
  ASSERT_TRUE(qp0->post_send(2, buf0, 64).is_ok());
  // Scribble over the source before delivery.
  Bytes scribble(64, std::byte{0xEE});
  ASSERT_TRUE(tb.fabric().host_dram(0).write(buf0, scribble).is_ok());
  ASSERT_TRUE(drain_one(*cq1).has_value());
  Bytes out(64);
  ASSERT_TRUE(tb.fabric().host_dram(1).read(buf1, out).is_ok());
  EXPECT_EQ(out, msg);
}

TEST_F(RdmaFixture, RdmaWriteIsOneSided) {
  Bytes data = make_pattern(4096, 3);
  ASSERT_TRUE(tb.fabric().host_dram(0).write(buf0, data).is_ok());
  ASSERT_TRUE(qp0->rdma_write(300, buf0, 4096, buf1 + 8192).is_ok());
  auto wc = drain_one(*cq0);
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->opcode, WcOpcode::rdma_write);
  Bytes out(4096);
  ASSERT_TRUE(tb.fabric().host_dram(1).read(buf1 + 8192, out).is_ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(cq1->depth(), 0u);  // no completion on the passive side
}

TEST_F(RdmaFixture, RdmaReadPullsRemoteData) {
  Bytes data = make_pattern(8192, 4);
  ASSERT_TRUE(tb.fabric().host_dram(1).write(buf1, data).is_ok());
  ASSERT_TRUE(qp0->rdma_read(400, buf0, 8192, buf1).is_ok());
  auto wc = drain_one(*cq0);
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->opcode, WcOpcode::rdma_read);
  Bytes out(8192);
  ASSERT_TRUE(tb.fabric().host_dram(0).read(buf0, out).is_ok());
  EXPECT_EQ(out, data);
}

TEST_F(RdmaFixture, RdmaReadCostsMoreThanWrite) {
  const sim::Time t0 = tb.engine().now();
  ASSERT_TRUE(qp0->rdma_write(1, buf0, 4096, buf1).is_ok());
  ASSERT_TRUE(drain_one(*cq0).has_value());
  const sim::Duration write_cost = tb.engine().now() - t0;

  const sim::Time t1 = tb.engine().now();
  ASSERT_TRUE(qp0->rdma_read(2, buf0, 4096, buf1).is_ok());
  ASSERT_TRUE(drain_one(*cq0).has_value());
  const sim::Duration read_cost = tb.engine().now() - t1;
  EXPECT_GT(read_cost, write_cost);
}

TEST_F(RdmaFixture, UnregisteredMemoryRejected) {
  EXPECT_EQ(qp0->post_send(1, buf0 + 64 * KiB, 64).code(), Errc::permission_denied);
  EXPECT_EQ(qp0->rdma_write(2, buf0, 64, buf1 + 64 * KiB).code(), Errc::permission_denied);
  EXPECT_EQ(qp0->rdma_read(3, buf0 + 64 * KiB, 64, buf1).code(), Errc::permission_denied);
  EXPECT_EQ(qp1->post_recv(4, buf1 + 64 * KiB, 64).code(), Errc::permission_denied);
  EXPECT_EQ(net.stats().protection_errors, 4u);
}

TEST_F(RdmaFixture, RnrWhenNoRecvPosted) {
  ASSERT_TRUE(qp0->post_send(5, buf0, 64).is_ok());
  auto wc = drain_one(*cq0);
  ASSERT_TRUE(wc.has_value());
  EXPECT_FALSE(wc->status.is_ok());
  EXPECT_EQ(net.stats().rnr_drops, 1u);
}

TEST_F(RdmaFixture, MessageTooBigForRecvBuffer) {
  ASSERT_TRUE(qp1->post_recv(6, buf1, 64).is_ok());
  Bytes big = make_pattern(4096, 9);
  ASSERT_TRUE(tb.fabric().host_dram(0).write(buf0, big).is_ok());
  ASSERT_TRUE(qp0->post_send(7, buf0, 4096).is_ok());
  auto recv_wc = drain_one(*cq1);
  ASSERT_TRUE(recv_wc.has_value());
  EXPECT_FALSE(recv_wc->status.is_ok());
}

TEST_F(RdmaFixture, SmallMessageCannotOvertakeLargeWrite) {
  // Post a 64 KiB RDMA WRITE then a 16-byte SEND on the same QP; the SEND's
  // payload must be visible at the receiver only after the WRITE landed.
  ASSERT_TRUE(qp1->post_recv(800, buf1 + 48 * KiB, 4096).is_ok());
  Bytes big = make_pattern(32 * KiB, 10);
  ASSERT_TRUE(tb.fabric().host_dram(0).write(buf0, big).is_ok());
  ASSERT_TRUE(qp0->rdma_write(801, buf0, 32 * KiB, buf1).is_ok());
  ASSERT_TRUE(qp0->post_send(802, buf0, 16).is_ok());

  auto recv = drain_one(*cq1);
  ASSERT_TRUE(recv.has_value());
  // At the moment the SEND is delivered, the preceding WRITE is complete.
  Bytes out(32 * KiB);
  ASSERT_TRUE(tb.fabric().host_dram(1).read(buf1, out).is_ok());
  EXPECT_EQ(out, big);
}

TEST_F(RdmaFixture, MessageLatencyScalesWithSize) {
  const auto small = net.message_latency(0);
  const auto large = net.message_latency(64 * KiB);
  EXPECT_GT(large, small);
  EXPECT_NEAR(static_cast<double>(large - small),
              64.0 * 1024.0 / net.config().bytes_per_ns, 1.0);
}

TEST_F(RdmaFixture, RecvQueueOrderIsFifo) {
  ASSERT_TRUE(qp1->post_recv(1, buf1, 256).is_ok());
  ASSERT_TRUE(qp1->post_recv(2, buf1 + 256, 256).is_ok());
  ASSERT_TRUE(qp0->post_send(10, buf0, 16).is_ok());
  ASSERT_TRUE(qp0->post_send(11, buf0, 16).is_ok());
  auto first = drain_one(*cq1);
  auto second = drain_one(*cq1);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->wr_id, 1u);
  EXPECT_EQ(second->wr_id, 2u);
}

}  // namespace
}  // namespace nvmeshare::rdma
