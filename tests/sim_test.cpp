// Unit tests for the discrete-event engine and coroutine primitives.
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace nvmeshare::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, RunsEventsInTimestampOrder) {
  Engine e;
  std::vector<int> order;
  e.at(30, [&] { order.push_back(3); });
  e.at(10, [&] { order.push_back(1); });
  e.at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, EqualTimestampsAreFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    e.at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, RunUntilAdvancesClockEvenWhenQueueDrains) {
  Engine e;
  e.at(10, [] {});
  e.run_until(100);
  EXPECT_EQ(e.now(), 100);
}

TEST(Engine, RunUntilDoesNotRunLaterEvents) {
  Engine e;
  bool late = false;
  e.at(200, [&] { late = true; });
  e.run_until(100);
  EXPECT_FALSE(late);
  EXPECT_EQ(e.pending_events(), 1u);
  e.run_until(200);
  EXPECT_TRUE(late);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 5) e.after(10, chain);
  };
  e.after(10, chain);
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now(), 50);
}

TEST(Engine, StopHaltsProcessing) {
  Engine e;
  int count = 0;
  e.at(1, [&] { ++count; });
  e.at(2, [&] {
    ++count;
    e.stop();
  });
  e.at(3, [&] { ++count; });
  e.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(e.pending_events(), 1u);
}

TEST(Delay, SuspendsForExactDuration) {
  Engine e;
  Time resumed_at = -1;
  [](Engine& eng, Time& out) -> Task {
    co_await delay(eng, 123);
    out = eng.now();
  }(e, resumed_at);
  e.run();
  EXPECT_EQ(resumed_at, 123);
}

TEST(Delay, ZeroDelayDoesNotSuspend) {
  Engine e;
  bool ran = false;
  [](Engine& eng, bool& out) -> Task {
    co_await delay(eng, 0);
    out = true;
  }(e, ran);
  EXPECT_TRUE(ran);  // ran eagerly, before e.run()
}

TEST(FuturePromise, DeliversValue) {
  Engine e;
  Promise<int> p(e);
  int got = 0;
  [](Engine&, Promise<int> promise, int& out) -> Task {
    out = co_await promise.future();
  }(e, p, got);
  EXPECT_EQ(got, 0);
  p.set(42);
  e.run();
  EXPECT_EQ(got, 42);
}

TEST(FuturePromise, ValueBeforeAwaitIsImmediate) {
  Engine e;
  Promise<int> p(e);
  p.set(7);
  EXPECT_TRUE(p.future().ready());
  int got = 0;
  [](Promise<int> promise, int& out) -> Task { out = co_await promise.future(); }(p, got);
  EXPECT_EQ(got, 7);
}

TEST(Event, WakesAllWaiters) {
  Engine e;
  Event ev(e);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    [](Event& event, int& count) -> Task {
      co_await event.wait();
      ++count;
    }(ev, woken);
  }
  e.run();
  EXPECT_EQ(woken, 0);
  ev.set();
  e.run();
  EXPECT_EQ(woken, 3);
}

TEST(Event, WaitOnSetEventReturnsImmediately) {
  Engine e;
  Event ev(e);
  ev.set();
  bool done = false;
  [](Event& event, bool& out) -> Task {
    co_await event.wait();
    out = true;
  }(ev, done);
  EXPECT_TRUE(done);
}

TEST(Event, WaitForTimesOut) {
  Engine e;
  Event ev(e);
  bool fired = true;
  [](Event& event, bool& out) -> Task { out = co_await event.wait_for(100); }(ev, fired);
  e.run();
  EXPECT_FALSE(fired);           // timed out
  EXPECT_EQ(e.now(), 100);
}

TEST(Event, WaitForSucceedsBeforeTimeout) {
  Engine e;
  Event ev(e);
  bool fired = false;
  [](Event& event, bool& out) -> Task { out = co_await event.wait_for(100); }(ev, fired);
  e.after(50, [&] { ev.set(); });
  e.run();
  EXPECT_TRUE(fired);
}

TEST(Mailbox, FifoOrder) {
  Engine e;
  Mailbox<int> box(e);
  box.push(1);
  box.push(2);
  box.push(3);
  std::vector<int> got;
  [](Mailbox<int>& b, std::vector<int>& out) -> Task {
    for (int i = 0; i < 3; ++i) {
      auto v = co_await b.pop();
      out.push_back(*v);
    }
  }(box, got);
  e.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Mailbox, PopWakesOnPush) {
  Engine e;
  Mailbox<int> box(e);
  int got = 0;
  [](Mailbox<int>& b, int& out) -> Task {
    auto v = co_await b.pop();
    out = *v;
  }(box, got);
  e.run();
  EXPECT_EQ(got, 0);
  box.push(99);
  e.run();
  EXPECT_EQ(got, 99);
}

TEST(Mailbox, PopForTimesOutWithNullopt) {
  Engine e;
  Mailbox<int> box(e);
  bool got_value = true;
  [](Mailbox<int>& b, bool& out) -> Task {
    auto v = co_await b.pop_for(250);
    out = v.has_value();
  }(box, got_value);
  e.run();
  EXPECT_FALSE(got_value);
  EXPECT_EQ(e.now(), 250);
}

TEST(Semaphore, LimitsConcurrency) {
  Engine e;
  Semaphore sem(e, 2);
  int active = 0;
  int peak = 0;
  for (int i = 0; i < 5; ++i) {
    [](Engine& eng, Semaphore& s, int& act, int& pk) -> Task {
      co_await s.acquire();
      ++act;
      pk = std::max(pk, act);
      co_await delay(eng, 10);
      --act;
      s.release();
    }(e, sem, active, peak);
  }
  e.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(active, 0);
  EXPECT_EQ(sem.available(), 2);
}

TEST(Semaphore, TryAcquire) {
  Engine e;
  Semaphore sem(e, 1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

TEST(Event, SetDuringTimeoutRaceResumesExactlyOnce) {
  // The event fires at the same instant the timeout expires. The waiter
  // must resume exactly once, and the tie is deterministic: the timeout
  // event was enqueued first (at suspension time), so it wins FIFO order.
  Engine e;
  Event ev(e);
  int resumes = 0;
  bool fired = false;
  [](Event& event, int& n, bool& out) -> Task {
    out = co_await event.wait_for(100);
    ++n;
  }(ev, resumes, fired);
  e.at(100, [&] { ev.set(); });
  e.run();
  EXPECT_EQ(resumes, 1);
  EXPECT_FALSE(fired);      // the timeout won the tie...
  EXPECT_TRUE(ev.is_set()); // ...but the set() still happened
}

TEST(Mailbox, OnePushWakesExactlyOneOfTwoWaiters) {
  Engine e;
  Mailbox<int> box(e);
  int got_value = 0;
  int resumed_empty = 0;
  for (int i = 0; i < 2; ++i) {
    [](Mailbox<int>& b, int& value, int& empty) -> Task {
      auto v = co_await b.pop_for(1000);
      if (v) {
        value = *v;
      } else {
        ++empty;
      }
    }(box, got_value, resumed_empty);
  }
  box.push(7);
  e.run();
  EXPECT_EQ(got_value, 7);
  EXPECT_EQ(resumed_empty, 1);  // the other waiter timed out with nullopt
}

TEST(Semaphore, BulkReleaseWakesMultipleWaiters) {
  Engine e;
  Semaphore sem(e, 0);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    [](Semaphore& s, int& n) -> Task {
      co_await s.acquire();
      ++n;
    }(sem, woken);
  }
  e.run();
  EXPECT_EQ(woken, 0);
  sem.release(2);
  e.run();
  EXPECT_EQ(woken, 2);
  sem.release(1);
  e.run();
  EXPECT_EQ(woken, 3);
}

TEST(FuturePromise, TryTakeConsumesOnce) {
  Engine e;
  Promise<int> p(e);
  auto f = p.future();
  EXPECT_FALSE(f.try_take().has_value());
  p.set(5);
  auto v = f.try_take();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

TEST(Determinism, SameScheduleTwice) {
  auto run_once = []() {
    Engine e;
    std::vector<int> order;
    Event ev(e);
    Mailbox<int> box(e);
    for (int i = 0; i < 4; ++i) {
      [](Engine& eng, Event& event, Mailbox<int>& b, std::vector<int>& out, int id) -> Task {
        co_await delay(eng, 10 * (id % 2));
        co_await event.wait();
        b.push(id);
        out.push_back(id);
      }(e, ev, box, order, i);
    }
    e.after(50, [&] { ev.set(); });
    e.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- calendar-queue vs reference-heap property sweep --------------------------
//
// The calendar queue must fire events in exactly the order the old binary
// heap did: ascending (timestamp, insertion-seq). Both sides replay the same
// deterministic program — event ids are allocated in schedule order, and an
// event's children (count + deltas) are a pure hash of (round, id) — so as
// long as both fire ids in the same order, the two id streams stay in
// lockstep. The delta mix deliberately covers same-bucket ties, exact bucket
// boundaries, the window edge, and the overflow list.

namespace wheelprop {

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

Duration delta_of(std::uint64_t round, std::uint64_t id, std::uint64_t k) {
  const std::uint64_t h = mix(round * 1'000'003 + id * 131 + k);
  switch (h % 8) {
    case 0: return 0;
    case 1: return static_cast<Duration>(mix(h) % 4);            // same bucket
    case 2: return static_cast<Duration>(mix(h) % 200);          // near buckets
    case 3: return static_cast<Duration>(mix(h) % 5000);
    case 4: return static_cast<Duration>(mix(h) % 300'000);      // window edge
    case 5: return static_cast<Duration>(mix(h) % 3'000'000);    // overflow
    case 6: return 128 * static_cast<Duration>(mix(h) % 3000);   // bucket boundary
    default: return static_cast<Duration>(mix(h) % 100'000'000);  // far future
  }
}

std::uint64_t fanout_of(std::uint64_t round, std::uint64_t id) {
  return mix(round * 7 + id * 31 + 5) % 3;  // 0..2 children per event
}

struct WheelSide {
  Engine eng;
  std::vector<std::uint64_t> fired;
  std::uint64_t next_id = 0;
  std::uint64_t round = 0;
  std::uint64_t budget = 0;  // stop expanding once this many ids allocated

  void schedule(Duration d) {
    const std::uint64_t id = next_id++;
    eng.after(d, [this, id]() { fire(id); });
  }
  void fire(std::uint64_t id) {
    fired.push_back(id);
    if (next_id >= budget) return;
    const std::uint64_t n = fanout_of(round, id);
    for (std::uint64_t k = 0; k < n; ++k) schedule(delta_of(round, id, k));
  }
};

/// Reference implementation: the old heap core's exact semantics, including
/// (t, seq) tie-break, the t < now clamp, and run_until's clock advance.
struct HeapSide {
  struct Ev {
    Time t;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct Cmp {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, Cmp> q;
  Time now = 0;
  std::uint64_t seq = 0;
  std::vector<std::uint64_t> fired;
  std::uint64_t next_id = 0;
  std::uint64_t round = 0;
  std::uint64_t budget = 0;

  void schedule(Duration d) {
    const Time t = now + d;
    q.push({t < now ? now : t, seq++, next_id++});
  }
  void fire(const Ev& e) {
    now = e.t;
    fired.push_back(e.id);
    if (next_id >= budget) return;
    const std::uint64_t n = fanout_of(round, e.id);
    for (std::uint64_t k = 0; k < n; ++k) schedule(delta_of(round, e.id, k));
  }
  void run_until(Time t) {
    while (!q.empty() && q.top().t <= t) {
      Ev e = q.top();
      q.pop();
      fire(e);
    }
    if (now < t) now = t;
  }
  void run() {
    while (!q.empty()) {
      Ev e = q.top();
      q.pop();
      fire(e);
    }
  }
};

}  // namespace wheelprop

TEST(CalendarQueueProperty, MatchesReferenceHeapOver1kSeededRounds) {
  using namespace wheelprop;
  for (std::uint64_t round = 0; round < 1000; ++round) {
    WheelSide wheel;
    HeapSide heap;
    wheel.round = heap.round = round;
    wheel.budget = heap.budget = 400;

    for (int i = 0; i < 40; ++i) {
      const Duration d = delta_of(round, 1'000'000 + i, 0);
      wheel.schedule(d);
      heap.schedule(d);
    }

    // Interleave run_until steps with roots scheduled from *outside* any
    // callback — now() sits wherever the previous step left it, possibly
    // mid-window after an early drain. This is the interleaving that
    // exposes cursor-placement bugs a pure run() sweep cannot.
    std::mt19937_64 driver(round ^ 0xabcdef);
    for (int s = 0; s < 6; ++s) {
      for (int j = 0; j < 3; ++j) {
        const Duration d = delta_of(round, 2'000'000 + s * 10 + j, 0);
        wheel.schedule(d);
        heap.schedule(d);
      }
      const Duration step = static_cast<Duration>(driver() % 2'000'000);
      wheel.eng.run_until(wheel.eng.now() + step);
      heap.run_until(heap.now + step);
      ASSERT_EQ(wheel.eng.pending_events(), heap.q.size())
          << "round " << round << " step " << s;
      ASSERT_EQ(wheel.eng.now(), heap.now) << "round " << round << " step " << s;
    }
    wheel.eng.run();
    heap.run();
    ASSERT_EQ(wheel.fired, heap.fired) << "firing order diverged in round " << round;
  }
}

TEST(CalendarQueueProperty, StopAndRerunResumesInOrder) {
  using namespace wheelprop;
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    e.after(100 * (i % 4), [&order, i]() { order.push_back(i); });
  }
  e.after(100, [&e]() { e.stop(); });
  e.run();
  EXPECT_TRUE(e.stopped());
  EXPECT_LT(order.size(), 8u);
  e.run();  // resume: remaining events fire in the same global order
  ASSERT_EQ(order.size(), 8u);
  EXPECT_EQ(order, (std::vector<int>{0, 4, 1, 5, 2, 6, 3, 7}));
}

// Regression: run_until that drains early must leave the dispatch cursor at
// the last *popped* position, not parked on the next (future) bucket. If the
// cursor moves on a peek, events scheduled afterwards — at t >= now() but
// before that future bucket, e.g. exactly one 128 ns bucket ahead — land
// "behind" the cursor, where the wrapped bitmap scan misorders or skips
// them. Seen in the wild as a mailbox request vanishing between poll rounds.
TEST(Engine, ScheduleAfterEarlyDrainAtBucketBoundaryKeepsOrder) {
  Engine e;
  std::vector<int> order;
  // One far event parks in a future bucket; run_until(t) with t well before
  // it drains nothing but advances now() to t.
  e.after(10'000, [&order]() { order.push_back(99); });
  EXPECT_EQ(e.run_until(1'000), 0u);
  EXPECT_EQ(e.now(), 1'000);
  // Schedule between now() and the far event, straddling bucket boundaries
  // of the 128 ns wheel (1024 and 1152 are exact boundaries; 1100 is not).
  e.after(24, [&order]() { order.push_back(0); });    // t=1024, boundary
  e.after(100, [&order]() { order.push_back(1); });   // t=1100
  e.after(152, [&order]() { order.push_back(2); });   // t=1152, boundary
  e.after(0, [&order]() { order.push_back(3); });     // t=1000, same slot as now
  e.run();
  EXPECT_EQ(order, (std::vector<int>{3, 0, 1, 2, 99}));
  EXPECT_EQ(e.now(), 10'000);
}

}  // namespace
}  // namespace nvmeshare::sim
