// Unit tests for the discrete-event engine and coroutine primitives.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace nvmeshare::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, RunsEventsInTimestampOrder) {
  Engine e;
  std::vector<int> order;
  e.at(30, [&] { order.push_back(3); });
  e.at(10, [&] { order.push_back(1); });
  e.at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, EqualTimestampsAreFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    e.at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, RunUntilAdvancesClockEvenWhenQueueDrains) {
  Engine e;
  e.at(10, [] {});
  e.run_until(100);
  EXPECT_EQ(e.now(), 100);
}

TEST(Engine, RunUntilDoesNotRunLaterEvents) {
  Engine e;
  bool late = false;
  e.at(200, [&] { late = true; });
  e.run_until(100);
  EXPECT_FALSE(late);
  EXPECT_EQ(e.pending_events(), 1u);
  e.run_until(200);
  EXPECT_TRUE(late);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 5) e.after(10, chain);
  };
  e.after(10, chain);
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now(), 50);
}

TEST(Engine, StopHaltsProcessing) {
  Engine e;
  int count = 0;
  e.at(1, [&] { ++count; });
  e.at(2, [&] {
    ++count;
    e.stop();
  });
  e.at(3, [&] { ++count; });
  e.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(e.pending_events(), 1u);
}

TEST(Delay, SuspendsForExactDuration) {
  Engine e;
  Time resumed_at = -1;
  [](Engine& eng, Time& out) -> Task {
    co_await delay(eng, 123);
    out = eng.now();
  }(e, resumed_at);
  e.run();
  EXPECT_EQ(resumed_at, 123);
}

TEST(Delay, ZeroDelayDoesNotSuspend) {
  Engine e;
  bool ran = false;
  [](Engine& eng, bool& out) -> Task {
    co_await delay(eng, 0);
    out = true;
  }(e, ran);
  EXPECT_TRUE(ran);  // ran eagerly, before e.run()
}

TEST(FuturePromise, DeliversValue) {
  Engine e;
  Promise<int> p(e);
  int got = 0;
  [](Engine&, Promise<int> promise, int& out) -> Task {
    out = co_await promise.future();
  }(e, p, got);
  EXPECT_EQ(got, 0);
  p.set(42);
  e.run();
  EXPECT_EQ(got, 42);
}

TEST(FuturePromise, ValueBeforeAwaitIsImmediate) {
  Engine e;
  Promise<int> p(e);
  p.set(7);
  EXPECT_TRUE(p.future().ready());
  int got = 0;
  [](Promise<int> promise, int& out) -> Task { out = co_await promise.future(); }(p, got);
  EXPECT_EQ(got, 7);
}

TEST(Event, WakesAllWaiters) {
  Engine e;
  Event ev(e);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    [](Event& event, int& count) -> Task {
      co_await event.wait();
      ++count;
    }(ev, woken);
  }
  e.run();
  EXPECT_EQ(woken, 0);
  ev.set();
  e.run();
  EXPECT_EQ(woken, 3);
}

TEST(Event, WaitOnSetEventReturnsImmediately) {
  Engine e;
  Event ev(e);
  ev.set();
  bool done = false;
  [](Event& event, bool& out) -> Task {
    co_await event.wait();
    out = true;
  }(ev, done);
  EXPECT_TRUE(done);
}

TEST(Event, WaitForTimesOut) {
  Engine e;
  Event ev(e);
  bool fired = true;
  [](Event& event, bool& out) -> Task { out = co_await event.wait_for(100); }(ev, fired);
  e.run();
  EXPECT_FALSE(fired);           // timed out
  EXPECT_EQ(e.now(), 100);
}

TEST(Event, WaitForSucceedsBeforeTimeout) {
  Engine e;
  Event ev(e);
  bool fired = false;
  [](Event& event, bool& out) -> Task { out = co_await event.wait_for(100); }(ev, fired);
  e.after(50, [&] { ev.set(); });
  e.run();
  EXPECT_TRUE(fired);
}

TEST(Mailbox, FifoOrder) {
  Engine e;
  Mailbox<int> box(e);
  box.push(1);
  box.push(2);
  box.push(3);
  std::vector<int> got;
  [](Mailbox<int>& b, std::vector<int>& out) -> Task {
    for (int i = 0; i < 3; ++i) {
      auto v = co_await b.pop();
      out.push_back(*v);
    }
  }(box, got);
  e.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Mailbox, PopWakesOnPush) {
  Engine e;
  Mailbox<int> box(e);
  int got = 0;
  [](Mailbox<int>& b, int& out) -> Task {
    auto v = co_await b.pop();
    out = *v;
  }(box, got);
  e.run();
  EXPECT_EQ(got, 0);
  box.push(99);
  e.run();
  EXPECT_EQ(got, 99);
}

TEST(Mailbox, PopForTimesOutWithNullopt) {
  Engine e;
  Mailbox<int> box(e);
  bool got_value = true;
  [](Mailbox<int>& b, bool& out) -> Task {
    auto v = co_await b.pop_for(250);
    out = v.has_value();
  }(box, got_value);
  e.run();
  EXPECT_FALSE(got_value);
  EXPECT_EQ(e.now(), 250);
}

TEST(Semaphore, LimitsConcurrency) {
  Engine e;
  Semaphore sem(e, 2);
  int active = 0;
  int peak = 0;
  for (int i = 0; i < 5; ++i) {
    [](Engine& eng, Semaphore& s, int& act, int& pk) -> Task {
      co_await s.acquire();
      ++act;
      pk = std::max(pk, act);
      co_await delay(eng, 10);
      --act;
      s.release();
    }(e, sem, active, peak);
  }
  e.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(active, 0);
  EXPECT_EQ(sem.available(), 2);
}

TEST(Semaphore, TryAcquire) {
  Engine e;
  Semaphore sem(e, 1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

TEST(Event, SetDuringTimeoutRaceResumesExactlyOnce) {
  // The event fires at the same instant the timeout expires. The waiter
  // must resume exactly once, and the tie is deterministic: the timeout
  // event was enqueued first (at suspension time), so it wins FIFO order.
  Engine e;
  Event ev(e);
  int resumes = 0;
  bool fired = false;
  [](Event& event, int& n, bool& out) -> Task {
    out = co_await event.wait_for(100);
    ++n;
  }(ev, resumes, fired);
  e.at(100, [&] { ev.set(); });
  e.run();
  EXPECT_EQ(resumes, 1);
  EXPECT_FALSE(fired);      // the timeout won the tie...
  EXPECT_TRUE(ev.is_set()); // ...but the set() still happened
}

TEST(Mailbox, OnePushWakesExactlyOneOfTwoWaiters) {
  Engine e;
  Mailbox<int> box(e);
  int got_value = 0;
  int resumed_empty = 0;
  for (int i = 0; i < 2; ++i) {
    [](Mailbox<int>& b, int& value, int& empty) -> Task {
      auto v = co_await b.pop_for(1000);
      if (v) {
        value = *v;
      } else {
        ++empty;
      }
    }(box, got_value, resumed_empty);
  }
  box.push(7);
  e.run();
  EXPECT_EQ(got_value, 7);
  EXPECT_EQ(resumed_empty, 1);  // the other waiter timed out with nullopt
}

TEST(Semaphore, BulkReleaseWakesMultipleWaiters) {
  Engine e;
  Semaphore sem(e, 0);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    [](Semaphore& s, int& n) -> Task {
      co_await s.acquire();
      ++n;
    }(sem, woken);
  }
  e.run();
  EXPECT_EQ(woken, 0);
  sem.release(2);
  e.run();
  EXPECT_EQ(woken, 2);
  sem.release(1);
  e.run();
  EXPECT_EQ(woken, 3);
}

TEST(FuturePromise, TryTakeConsumesOnce) {
  Engine e;
  Promise<int> p(e);
  auto f = p.future();
  EXPECT_FALSE(f.try_take().has_value());
  p.set(5);
  auto v = f.try_take();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

TEST(Determinism, SameScheduleTwice) {
  auto run_once = []() {
    Engine e;
    std::vector<int> order;
    Event ev(e);
    Mailbox<int> box(e);
    for (int i = 0; i < 4; ++i) {
      [](Engine& eng, Event& event, Mailbox<int>& b, std::vector<int>& out, int id) -> Task {
        co_await delay(eng, 10 * (id % 2));
        co_await event.wait();
        b.push(id);
        out.push_back(id);
      }(e, ev, box, order, i);
    }
    e.after(50, [&] { ev.set(); });
    e.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace nvmeshare::sim
