// Unit and integration tests for the shared multi-queue I/O engine
// (block::IoEngine): attach-time config validation, queue-pair scheduling
// policies, drain-to-survivors during channel recovery, doorbell
// coalescing, per-channel metrics, and multi-channel operation through the
// full distributed-driver and NVMe-oF stacks.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "block/io_engine.hpp"
#include "nvmeof/initiator.hpp"
#include "nvmeof/target.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"

namespace nvmeshare::block {
namespace {

using namespace testutil;

// --- config validation (shared by all three backends) -----------------------

TEST(EngineValidate, AcceptsSaneConfigs) {
  IoEngine::Config cfg;
  cfg.channels = 4;
  cfg.queue_depth = 8;
  cfg.queue_entries = 64;
  EXPECT_TRUE(IoEngine::validate(cfg).is_ok());

  cfg.queue_depth = 63;  // largest legal depth for a 64-entry ring
  EXPECT_TRUE(IoEngine::validate(cfg).is_ok());

  cfg.queue_entries = 0;  // message transports: no ring constraint
  cfg.queue_depth = 1024;
  EXPECT_TRUE(IoEngine::validate(cfg).is_ok());
}

TEST(EngineValidate, RejectsDepthNotBelowRingSize) {
  // depth == entries makes SQ-full indistinguishable from SQ-empty on wrap.
  IoEngine::Config cfg;
  cfg.queue_entries = 64;
  cfg.queue_depth = 64;
  Status st = IoEngine::validate(cfg);
  EXPECT_EQ(st.code(), Errc::invalid_argument);

  cfg.queue_depth = 65;
  EXPECT_EQ(IoEngine::validate(cfg).code(), Errc::invalid_argument);
}

TEST(EngineValidate, RejectsDegenerateShapes) {
  IoEngine::Config cfg;
  cfg.channels = 0;
  EXPECT_EQ(IoEngine::validate(cfg).code(), Errc::invalid_argument);
  cfg.channels = kMaxEngineChannels + 1;
  EXPECT_EQ(IoEngine::validate(cfg).code(), Errc::invalid_argument);
  cfg.channels = 1;
  cfg.queue_depth = 0;
  EXPECT_EQ(IoEngine::validate(cfg).code(), Errc::invalid_argument);
}

TEST(EngineValidate, ClientAttachRejectsDepthEqualToEntries) {
  // The regression this guards: pre-engine code accepted depth == entries
  // and wedged the ring at full load. Now it is a config error at attach.
  Testbed tb(small_testbed(2));
  auto manager = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), {}));
  ASSERT_TRUE(manager.has_value());

  driver::Client::Config cc;
  cc.queue_entries = 64;
  cc.queue_depth = 64;
  auto client = tb.wait(driver::Client::attach(tb.service(), 1, tb.device_id(), cc));
  ASSERT_FALSE(client.has_value());
  EXPECT_EQ(client.status().code(), Errc::invalid_argument);
}

TEST(EngineValidate, LocalDriverRejectsDepthEqualToEntries) {
  Testbed tb(small_testbed(2));
  driver::LocalDriver::Config dc;
  dc.queue_entries = 32;
  dc.queue_depth = 32;
  auto drv = tb.wait(
      driver::LocalDriver::start(tb.cluster(), tb.nvme_endpoint(), nullptr, dc));
  ASSERT_FALSE(drv.has_value());
  EXPECT_EQ(drv.status().code(), Errc::invalid_argument);
}

TEST(EngineValidate, InitiatorRejectsChannelCountOutOfRange) {
  Testbed tb(small_testbed(2));
  auto target = tb.wait(nvmeof::Target::start(tb.cluster(), tb.nvme_endpoint(),
                                              tb.network(), {}));
  ASSERT_TRUE(target.has_value());

  nvmeof::Initiator::Config ic;
  ic.channels = kMaxEngineChannels + 1;
  auto init = tb.wait(
      nvmeof::Initiator::connect(tb.cluster(), tb.network(), **target, 1, ic));
  ASSERT_FALSE(init.has_value());
  EXPECT_EQ(init.status().code(), Errc::invalid_argument);
}

// --- engine unit tests over a fake transport --------------------------------

/// Minimal transport: tokens count up per channel, rings are counted, and
/// (when armed) completions land a fixed delay after the doorbell.
class FakeTransport final : public IoTransport {
 public:
  FakeTransport(sim::Engine& engine, std::uint32_t channels)
      : engine_(engine), issued_(channels), rings_(channels) {}

  void attach(IoEngine* eng) { engine_io_ = eng; }
  void set_auto_complete(bool on) { auto_complete_ = on; }

  Result<std::uint16_t> issue(std::uint32_t chan, void* cookie) override {
    (void)cookie;
    const auto token = static_cast<std::uint16_t>(issued_[chan].size());
    issued_[chan].push_back(token);
    staged_.push_back({chan, token});
    return token;
  }

  Status ring(std::uint32_t chan) override {
    ++rings_[chan];
    if (auto_complete_) {
      for (const auto& [c, token] : staged_) {
        if (c != chan) continue;
        engine_.after(100, [this, c = c, token = token]() {
          (void)engine_io_->complete(c, token, 0);
        });
      }
    }
    std::erase_if(staged_, [chan](const auto& s) { return s.first == chan; });
    return Status::ok();
  }

  [[nodiscard]] bool retryable(std::uint16_t) const override { return false; }
  void start_recovery(std::uint32_t chan) override { recoveries_.push_back(chan); }
  [[nodiscard]] std::uint16_t trace_qid(std::uint32_t chan) const override {
    return static_cast<std::uint16_t>(chan + 1);
  }

  std::uint64_t rings(std::uint32_t chan) const { return rings_[chan]; }
  const std::vector<std::uint32_t>& recoveries() const { return recoveries_; }

 private:
  sim::Engine& engine_;
  IoEngine* engine_io_ = nullptr;
  bool auto_complete_ = false;
  std::vector<std::vector<std::uint16_t>> issued_;
  std::vector<std::uint64_t> rings_;
  std::vector<std::pair<std::uint32_t, std::uint16_t>> staged_;
  std::vector<std::uint32_t> recoveries_;
};

struct EngineHarness {
  explicit EngineHarness(IoEngine::Config cfg)
      : transport(engine, cfg.channels),
        io(engine, transport, std::make_shared<bool>(false), std::move(cfg)) {
    transport.attach(&io);
  }
  sim::Engine engine;
  FakeTransport transport;
  IoEngine io;
};

std::vector<IoEngine::Grant> acquire_n(EngineHarness& h, std::uint32_t n) {
  std::vector<sim::Future<IoEngine::Grant>> futures;
  for (std::uint32_t i = 0; i < n; ++i) futures.push_back(h.io.acquire());
  h.engine.run();
  std::vector<IoEngine::Grant> grants;
  for (auto& f : futures) {
    auto g = f.try_take();
    EXPECT_TRUE(g.has_value());
    if (g) grants.push_back(*g);
  }
  return grants;
}

TEST(EngineScheduler, RoundRobinSpreadsGrantsEvenly) {
  IoEngine::Config cfg;
  cfg.channels = 4;
  cfg.queue_depth = 4;
  EngineHarness h(cfg);

  auto grants = acquire_n(h, 8);
  ASSERT_EQ(grants.size(), 8u);
  for (std::uint32_t c = 0; c < 4; ++c) EXPECT_EQ(h.io.inflight(c), 2u);
  // Global slot ids are channel-disjoint: chan * depth + local.
  for (const auto& g : grants) EXPECT_EQ(g.slot / cfg.queue_depth, g.chan);
}

TEST(EngineScheduler, LeastInflightPicksEmptiestChannel) {
  IoEngine::Config cfg;
  cfg.channels = 3;
  cfg.queue_depth = 4;
  cfg.scheduler = IoEngine::Scheduler::least_inflight;
  EngineHarness h(cfg);

  auto grants = acquire_n(h, 6);
  ASSERT_EQ(grants.size(), 6u);
  for (std::uint32_t c = 0; c < 3; ++c) EXPECT_EQ(h.io.inflight(c), 2u);

  // Free both slots on channel 1: the next two grants must land there.
  for (const auto& g : grants) {
    if (g.chan == 1) h.io.release(g);
  }
  auto refill = acquire_n(h, 2);
  ASSERT_EQ(refill.size(), 2u);
  EXPECT_EQ(refill[0].chan, 1u);
  EXPECT_EQ(refill[1].chan, 1u);
}

TEST(EngineRecovery, DrainsToSurvivorsWhileOneChannelRebuilds) {
  IoEngine::Config cfg;
  cfg.channels = 4;
  cfg.queue_depth = 2;
  cfg.cmd_timeout_ns = 1'000;
  cfg.cmd_retry_limit = 1;
  cfg.retry_backoff_ns = 100;
  EngineHarness h(cfg);

  // One command on channel 0 that never completes: the deadline watchdog
  // fires, the retry budget burns down, and the engine asks the transport
  // to rebuild the channel. The fake leaves it mid-recovery.
  auto grants = acquire_n(h, 1);
  ASSERT_EQ(grants.size(), 1u);
  ASSERT_EQ(grants[0].chan, 0u);
  auto doomed = h.io.run({grants[0]});
  h.engine.run();
  ASSERT_EQ(h.transport.recoveries().size(), 1u);
  EXPECT_EQ(h.transport.recoveries()[0], 0u);
  EXPECT_TRUE(h.io.recovering(0));
  EXPECT_FALSE(doomed.ready()) << "command must wait for the rebuilt channel";

  // While channel 0 rebuilds, every new grant lands on a survivor.
  auto survivors = acquire_n(h, 6);
  ASSERT_EQ(survivors.size(), 6u);
  for (const auto& g : survivors) EXPECT_NE(g.chan, 0u);

  // Recovery finishes; the parked command re-issues and (with completions
  // now flowing) resolves.
  h.transport.set_auto_complete(true);
  h.io.finish_recovery(0);
  h.engine.run();
  EXPECT_FALSE(h.io.recovering(0));
  auto outcome = doomed.try_take();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok());
}

TEST(EngineDoorbell, CoalescingRingsOncePerBurst) {
  IoEngine::Config cfg;
  cfg.channels = 1;
  cfg.queue_depth = 8;
  cfg.coalesce_doorbells = true;
  EngineHarness h(cfg);
  h.transport.set_auto_complete(true);

  auto grants = acquire_n(h, 4);
  ASSERT_EQ(grants.size(), 4u);
  std::vector<sim::Future<CmdOutcome>> cmds;
  for (const auto& g : grants) cmds.push_back(h.io.run({g}));
  h.engine.run();
  for (auto& c : cmds) {
    auto out = c.try_take();
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(out->ok());
  }
  // Four submissions in one doorbell-latency window share a single ring.
  EXPECT_EQ(h.transport.rings(0), 1u);
  EXPECT_EQ(h.io.doorbell_writes(), 1u);
  EXPECT_EQ(h.io.coalesced_cmds(), 4u);
}

TEST(EngineDoorbell, WithoutCoalescingEveryCommandRings) {
  IoEngine::Config cfg;
  cfg.channels = 1;
  cfg.queue_depth = 8;
  EngineHarness h(cfg);
  h.transport.set_auto_complete(true);

  auto grants = acquire_n(h, 4);
  std::vector<sim::Future<CmdOutcome>> cmds;
  for (const auto& g : grants) cmds.push_back(h.io.run({g}));
  h.engine.run();
  for (auto& c : cmds) {
    auto out = c.try_take();
    ASSERT_TRUE(out.has_value() && out->ok());
  }
  EXPECT_EQ(h.transport.rings(0), 4u);
  EXPECT_EQ(h.io.doorbell_writes(), 4u);
}

// --- multi-channel operation through the real stacks ------------------------

TEST(EngineStack, ClientMultiChannelRoundTrips) {
  Testbed tb(small_testbed(2));
  driver::Client::Config cc;
  cc.channels = 4;
  cc.queue_depth = 8;
  auto stack = bring_up(tb, 0, 1, cc);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();

  // Four distinct queue pairs were granted in one mailbox batch.
  std::vector<std::uint16_t> qids;
  for (std::uint32_t c = 0; c < 4; ++c) {
    qids.push_back(stack->client->qid(c));
    EXPECT_NE(qids.back(), 0u);
  }
  std::sort(qids.begin(), qids.end());
  EXPECT_EQ(std::unique(qids.begin(), qids.end()), qids.end());
  EXPECT_EQ(stack->manager->active_queue_pairs(), 5u);  // 4 I/O + admin

  for (int i = 0; i < 4; ++i) {
    write_read_verify(tb, *stack->client, 1, 1000 + 64 * i, 4096,
                      0x5EED + static_cast<std::uint64_t>(i));
  }

  // Per-channel engine metrics exist under the satellite naming scheme.
  const std::string snapshot = obs::Registry::global().to_json();
  for (int c = 0; c < 4; ++c) {
    const std::string prefix = "nvmeshare.engine.client.qp" + std::to_string(c);
    EXPECT_NE(snapshot.find(prefix + ".doorbell_writes"), std::string::npos) << prefix;
    EXPECT_NE(snapshot.find(prefix + ".coalesced_cmds"), std::string::npos) << prefix;
    EXPECT_NE(snapshot.find(prefix + ".inflight"), std::string::npos) << prefix;
  }

  Status st = tb.wait_status(stack->client->detach(), 30_s);
  EXPECT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_EQ(stack->manager->active_queue_pairs(), 1u);  // batch delete worked
}

TEST(EngineStack, InitiatorMultiChannelRoundTrips) {
  Testbed tb(small_testbed(2));
  auto target = tb.wait(nvmeof::Target::start(tb.cluster(), tb.nvme_endpoint(),
                                              tb.network(), {}));
  ASSERT_TRUE(target.has_value());

  nvmeof::Initiator::Config ic;
  ic.channels = 4;
  ic.queue_depth = 8;
  ic.coalesce_doorbells = true;
  auto init = tb.wait(
      nvmeof::Initiator::connect(tb.cluster(), tb.network(), **target, 1, ic));
  ASSERT_TRUE(init.has_value()) << init.status().to_string();

  EXPECT_EQ((*init)->max_queue_depth(), 32u);
  for (int i = 0; i < 4; ++i) {
    write_read_verify(tb, **init, 1, 3000 + 64 * i, 4096,
                      0xFAB0 + static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ((*target)->stats().errors, 0u);
}

TEST(EngineStack, ClientCoalescedDoorbellsUnderConcurrency) {
  Testbed tb(small_testbed(2));
  driver::Client::Config cc;
  cc.channels = 2;
  cc.queue_depth = 8;
  cc.coalesce_doorbells = true;
  auto stack = bring_up(tb, 0, 1, cc);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();

  workload::JobSpec spec;
  spec.pattern = workload::JobSpec::Pattern::randread;
  spec.ops = 600;
  spec.queue_depth = 16;
  spec.seed = 42;
  auto result = tb.wait(workload::run_job(tb.cluster(), *stack->client, 1, spec), 300_s);
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_EQ(result->errors, 0u);

  const auto& io = stack->client->io_engine();
  EXPECT_EQ(io.coalesced_cmds(), 600u);
  EXPECT_LT(io.doorbell_writes(), 600u)
      << "sustained QD16 load must ring less than once per command";
}

// --- retry backoff arithmetic -----------------------------------------------

TEST(EngineBackoff, DoublesPerAttemptUpToTheClamp) {
  EXPECT_EQ(IoEngine::backoff_ns(1000, 1), 1000);
  EXPECT_EQ(IoEngine::backoff_ns(1000, 2), 2000);
  EXPECT_EQ(IoEngine::backoff_ns(1000, 3), 4000);
  EXPECT_EQ(IoEngine::backoff_ns(1000, 0), 1000);  // attempt 0 behaves like 1
  // The shift saturates at 10 doublings even for absurd attempt counts.
  EXPECT_EQ(IoEngine::backoff_ns(1000, 11), 1000 << 10);
  EXPECT_EQ(IoEngine::backoff_ns(1000, 200), 1000 << 10);
}

TEST(EngineBackoff, ClampsToMaxInsteadOfOverflowing) {
  // The regression this guards: base << 10 on a base near the int64 ceiling
  // wrapped sim::Duration negative and sim::delay treated it as "no wait",
  // turning backed-off retries into a hot spin.
  const sim::Duration huge = std::numeric_limits<sim::Duration>::max() / 2;
  EXPECT_EQ(IoEngine::backoff_ns(huge, 11, 100'000'000), 100'000'000);
  EXPECT_EQ(IoEngine::backoff_ns(huge, 1, 100'000'000), 100'000'000);
  // Clamp boundary: the doubling stops exactly where it would cross max.
  EXPECT_EQ(IoEngine::backoff_ns(1000, 4, 5000), 5000);   // 8000 -> clamped
  EXPECT_EQ(IoEngine::backoff_ns(1000, 3, 5000), 4000);   // still under
  EXPECT_EQ(IoEngine::backoff_ns(1000, 1, 500), 500);     // base above max
  EXPECT_EQ(IoEngine::backoff_ns(0, 5), 0);
  EXPECT_EQ(IoEngine::backoff_ns(1000, 5, 0), 0);
  EXPECT_GT(IoEngine::backoff_ns(huge, 11), 0)
      << "default clamp must keep the result positive";
}

// --- QoS token-bucket pacer -------------------------------------------------

TEST(EngineQos, PacerDefersCommandsBeyondTheBurst) {
  IoEngine::Config cfg;
  cfg.channels = 1;
  cfg.queue_depth = 8;
  cfg.qos_iops_limit = 1000;  // 1 cmd per ms once the burst is spent
  cfg.qos_burst_cmds = 2;
  EngineHarness h(cfg);
  h.transport.set_auto_complete(true);

  ASSERT_TRUE(h.io.qos_enabled());
  auto grants = acquire_n(h, 6);
  ASSERT_EQ(grants.size(), 6u);
  std::vector<sim::Future<CmdOutcome>> outcomes;
  for (const auto& g : grants) outcomes.push_back(h.io.run({g}));
  h.engine.run();
  for (auto& f : outcomes) {
    auto o = f.try_take();
    ASSERT_TRUE(o.has_value());
    EXPECT_TRUE(o->ok());
  }
  // 2 commands ride the burst; the remaining 4 wait for refill tokens.
  EXPECT_EQ(h.io.qos_deferred_cmds(), 4u);
  EXPECT_GT(h.io.qos_throttle_ns(), 0u);
  // 4 deferred commands at 1/ms: the last one cannot finish before 4 ms.
  EXPECT_GE(h.engine.now(), 4'000'000);
}

TEST(EngineQos, PacerAdmitsExactlyRateTimesHorizonPlusBurst) {
  // The regression this guards: the refill path floor-divided the full-
  // bucket horizon, crediting a fraction of a token early on every wake-up.
  // Over a long run those fractions compounded into extra admitted
  // commands. At 1000 IOPS with a burst of 2, 502 commands must take at
  // least (502 - 2) / 1000 s of simulated time — not one token less.
  class CyclingTransport final : public IoTransport {
   public:
    CyclingTransport(sim::Engine& engine, std::uint16_t depth)
        : engine_(engine), depth_(depth) {}
    void attach(IoEngine* io) { io_ = io; }
    Result<std::uint16_t> issue(std::uint32_t, void*) override {
      const auto token = next_;
      next_ = static_cast<std::uint16_t>((next_ + 1) % depth_);
      staged_.push_back(token);
      return token;
    }
    Status ring(std::uint32_t chan) override {
      for (const auto token : staged_) {
        engine_.after(100, [this, chan, token]() { (void)io_->complete(chan, token, 0); });
      }
      staged_.clear();
      return Status::ok();
    }
    [[nodiscard]] bool retryable(std::uint16_t) const override { return false; }
    void start_recovery(std::uint32_t) override {}
    [[nodiscard]] std::uint16_t trace_qid(std::uint32_t chan) const override {
      return static_cast<std::uint16_t>(chan);
    }

   private:
    sim::Engine& engine_;
    IoEngine* io_ = nullptr;
    std::uint16_t depth_;
    std::uint16_t next_ = 0;
    std::vector<std::uint16_t> staged_;
  };

  IoEngine::Config cfg;
  cfg.channels = 1;
  cfg.queue_depth = 8;
  cfg.qos_iops_limit = 1000;
  cfg.qos_burst_cmds = 2;
  sim::Engine engine;
  CyclingTransport transport(engine, 8);
  IoEngine io(engine, transport, std::make_shared<bool>(false), cfg);
  transport.attach(&io);

  constexpr std::uint32_t kOps = 502;
  for (std::uint32_t i = 0; i < kOps; ++i) {
    auto grant_f = io.acquire();
    engine.run();
    auto grant = grant_f.try_take();
    ASSERT_TRUE(grant.has_value()) << "op " << i;
    auto outcome_f = io.run({*grant});
    engine.run();
    auto o = outcome_f.try_take();
    ASSERT_TRUE(o.has_value()) << "op " << i;
    EXPECT_TRUE(o->ok());
    io.release(*grant);
  }
  EXPECT_EQ(io.qos_deferred_cmds(), kOps - cfg.qos_burst_cmds);
  // Lower bound: no early admission anywhere in the 500-token horizon.
  EXPECT_GE(engine.now(), 500'000'000);
  // Upper bound: ceil rounding costs less than one token per command.
  EXPECT_LT(engine.now(), 501'000'000);
}

// --- completion-token hygiene -------------------------------------------------

/// Transport that hands out an out-of-cap completion token: models the
/// "corrupt cid" transport bug the pending-table cap exists to contain.
class RogueTokenTransport final : public IoTransport {
 public:
  explicit RogueTokenTransport(std::uint16_t token) : token_(token) {}
  Result<std::uint16_t> issue(std::uint32_t, void*) override { return token_; }
  Status ring(std::uint32_t) override { return Status::ok(); }
  [[nodiscard]] bool retryable(std::uint16_t) const override { return false; }
  void start_recovery(std::uint32_t) override {}
  [[nodiscard]] std::uint16_t trace_qid(std::uint32_t chan) const override {
    return static_cast<std::uint16_t>(chan);
  }

 private:
  std::uint16_t token_;
};

TEST(EngineTokens, OutOfCapTokenFailsTheCommandInsteadOfGrowingTheTable) {
  // cap = max(queue_entries, total depth) = 8; token 0xFFF0 is a transport
  // bug. The old code resized the pending table to fit it (64 KiB of
  // pointers per corrupt cid); now the command fails as a transport error.
  IoEngine::Config cfg;
  cfg.channels = 1;
  cfg.queue_depth = 8;
  sim::Engine engine;
  RogueTokenTransport transport(0xFFF0);
  IoEngine io(engine, transport, std::make_shared<bool>(false), cfg);

  auto grant_f = io.acquire();
  engine.run();
  auto grant = grant_f.try_take();
  ASSERT_TRUE(grant.has_value());
  auto outcome_f = io.run({*grant});
  engine.run();
  auto outcome = outcome_f.try_take();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok());
  EXPECT_EQ(outcome->kind, CmdOutcome::Kind::transport_error);
  EXPECT_EQ(outcome->transport.code(), Errc::internal);
}

TEST(EngineTokens, StrayCompletionTokenIsANoOp) {
  // disarm()/complete() on a token the engine never armed (beyond the
  // table, or an already-empty slot) must neither crash nor underflow the
  // pending count; real traffic keeps flowing afterwards.
  IoEngine::Config cfg;
  cfg.channels = 1;
  cfg.queue_depth = 4;
  EngineHarness h(cfg);
  h.transport.set_auto_complete(true);

  (void)h.io.complete(0, 999, 0);  // beyond any table this config can grow
  (void)h.io.complete(0, 0, 0);    // in range, but nothing armed
  h.engine.run();

  auto grants = acquire_n(h, 2);
  ASSERT_EQ(grants.size(), 2u);
  std::vector<sim::Future<CmdOutcome>> cmds;
  for (const auto& g : grants) cmds.push_back(h.io.run({g}));
  h.engine.run();
  for (auto& c : cmds) {
    auto out = c.try_take();
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(out->ok());
  }
}

TEST(EngineQos, DisarmedPacerLeavesTheStreamUntouched) {
  IoEngine::Config cfg;
  cfg.channels = 1;
  cfg.queue_depth = 8;
  EngineHarness h(cfg);
  h.transport.set_auto_complete(true);

  ASSERT_FALSE(h.io.qos_enabled());
  auto grants = acquire_n(h, 4);
  std::vector<sim::Future<CmdOutcome>> outcomes;
  for (const auto& g : grants) outcomes.push_back(h.io.run({g}));
  h.engine.run();
  EXPECT_EQ(h.io.qos_deferred_cmds(), 0u);
  EXPECT_EQ(h.io.qos_throttle_ns(), 0u);
}

}  // namespace
}  // namespace nvmeshare::block
