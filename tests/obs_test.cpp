// Tests for the observability subsystem: metrics registry (counters,
// gauges, log2 histograms, deterministic snapshots), span tracer (trace
// lifecycle, ring bounds, (qid,cid) correlation, Chrome export), the log
// flight recorder, the dangling-else-proof NVS_LOG macro, and an end-to-end
// check that a driver read emits the documented phase sequence.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "nvmeof/initiator.hpp"
#include "nvmeof/target.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace nvmeshare::obs {
namespace {

using namespace testutil;

// --- histogram buckets --------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket i>0 holds [2^(i-1), 2^i).
  EXPECT_EQ(HistogramCell::bucket_index(0), 0);
  EXPECT_EQ(HistogramCell::bucket_index(1), 1);
  EXPECT_EQ(HistogramCell::bucket_index(2), 2);
  EXPECT_EQ(HistogramCell::bucket_index(3), 2);
  EXPECT_EQ(HistogramCell::bucket_index(4), 3);
  EXPECT_EQ(HistogramCell::bucket_index(1023), 10);
  EXPECT_EQ(HistogramCell::bucket_index(1024), 11);
  EXPECT_EQ(HistogramCell::bucket_index(~0ull), HistogramCell::kBuckets - 1);

  for (int i = 1; i < HistogramCell::kBuckets; ++i) {
    const std::uint64_t floor = HistogramCell::bucket_floor(i);
    EXPECT_EQ(HistogramCell::bucket_index(floor), i) << "floor of bucket " << i;
    if (i >= 2) {
      EXPECT_EQ(HistogramCell::bucket_index(floor - 1), i - 1)
          << "value below floor of bucket " << i;
    }
    const std::uint64_t ceiling = HistogramCell::bucket_ceiling(i);
    if (ceiling != 0) {  // 0 = open-ended last bucket
      EXPECT_EQ(HistogramCell::bucket_index(ceiling - 1), i) << "last value of bucket " << i;
      EXPECT_EQ(ceiling, HistogramCell::bucket_floor(i + 1));
    }
  }
}

TEST(Histogram, RecordTracksCountSumMinMax) {
  HistogramCell cell;
  cell.record(7);
  cell.record(100);
  cell.record(3);
  EXPECT_EQ(cell.count, 3u);
  EXPECT_EQ(cell.sum, 110u);
  EXPECT_EQ(cell.min, 3u);
  EXPECT_EQ(cell.max, 100u);
  EXPECT_EQ(cell.buckets[HistogramCell::bucket_index(7)], 1u);
  EXPECT_EQ(cell.buckets[HistogramCell::bucket_index(100)], 1u);
}

// --- registry -----------------------------------------------------------------

TEST(Registry, InstancesAggregateIntoSharedCell) {
  Registry reg;
  Counter a(reg, "nvmeshare.test.hits");
  Counter b(reg, "nvmeshare.test.hits");
  ++a;
  ++a;
  b += 5;
  // Per-instance views stay distinct; the registry cell is the sum.
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(*reg.counter_cell("nvmeshare.test.hits"), 7u);
  EXPECT_EQ(reg.metric_count(), 1u);
}

TEST(Registry, GaugeAndHistogramRegister) {
  Registry reg;
  Gauge g(reg, "nvmeshare.test.depth");
  g.set(3.5);
  g.add(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  EXPECT_DOUBLE_EQ(*reg.gauge_cell("nvmeshare.test.depth"), 4.5);

  Histogram h(reg, "nvmeshare.test.lat_ns");
  h.record(1000);
  EXPECT_EQ(reg.histogram_cell("nvmeshare.test.lat_ns")->count, 1u);
}

TEST(Registry, JsonIsValidAndSorted) {
  Registry reg;
  Counter z(reg, "nvmeshare.test.zebra");
  Counter a(reg, "nvmeshare.test.aardvark");
  ++z;
  ++a;
  Histogram h(reg, "nvmeshare.test.hist");
  h.record(42);
  const std::string doc = reg.to_json();
  EXPECT_TRUE(json::valid(doc)) << doc;
  EXPECT_LT(doc.find("aardvark"), doc.find("zebra"));
  EXPECT_NE(reg.to_table().find("nvmeshare.test.hist"), std::string::npos);
}

TEST(Registry, ResetValuesKeepsRegistrations) {
  Registry reg;
  Counter c(reg, "nvmeshare.test.n");
  ++c;
  reg.reset_values();
  EXPECT_EQ(*reg.counter_cell("nvmeshare.test.n"), 0u);
  EXPECT_EQ(reg.metric_count(), 1u);
  // The instance handle still feeds the (zeroed) cell.
  ++c;
  EXPECT_EQ(*reg.counter_cell("nvmeshare.test.n"), 1u);
}

// Identical seeds must produce byte-identical global snapshots: the
// property CI uses to diff perf trajectories across commits.
TEST(Registry, SnapshotDeterministicAcrossIdenticalRuns) {
  auto one_run = []() -> std::string {
    Registry::global().reset_values();
    Testbed tb(small_testbed(2));
    auto stack = bring_up(tb, 0, 1);
    EXPECT_TRUE(stack.has_value());
    workload::JobSpec spec;
    spec.pattern = workload::JobSpec::Pattern::randrw;
    spec.ops = 200;
    spec.seed = 99;
    auto result = workload::run_job_blocking(tb.cluster(), *stack->client, 1, spec);
    EXPECT_TRUE(result.has_value());
    return Registry::global().to_json();
  };
  const std::string first = one_run();
  const std::string second = one_run();
  EXPECT_TRUE(json::valid(first));
  EXPECT_EQ(first, second) << "same seed, different metrics snapshot";
  EXPECT_NE(first.find("nvmeshare.client.reads"), std::string::npos);
  EXPECT_NE(first.find("nvmeshare.controller.io_reads"), std::string::npos);
  EXPECT_NE(first.find("nvmeshare.client.read_latency_ns"), std::string::npos);
}

// --- tracer -------------------------------------------------------------------

TEST(Tracer, DisabledTracerIsInert) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.begin_trace(Kind::read, 100), 0u);
  t.record(0, Track::client, Phase::submit, 0, 10);  // id 0 = no-op
  t.end_trace(0, 200);
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(Tracer, SpanLifecycle) {
  Tracer t;
  t.enable(64);
  const std::uint64_t id = t.begin_trace(Kind::write, 1000);
  ASSERT_NE(id, 0u);
  t.record(id, Track::client, Phase::submit, 1000, 1400);
  t.record(id, Track::controller, Phase::media, 1400, 1900);
  t.end_trace(id, 2000);

  const auto spans = t.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].phase, Phase::submit);
  EXPECT_EQ(spans[0].duration(), 400);
  EXPECT_EQ(spans[0].kind, Kind::write);  // kind stamped while the trace is open
  EXPECT_EQ(spans[1].track, Track::controller);
  EXPECT_EQ(spans[2].phase, Phase::request);
  EXPECT_EQ(spans[2].begin, 1000);
  EXPECT_EQ(spans[2].end, 2000);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, ConcurrentTracesKeepTheirKinds) {
  Tracer t;
  t.enable(64);
  const std::uint64_t r = t.begin_trace(Kind::read, 0);
  const std::uint64_t w = t.begin_trace(Kind::write, 0);
  EXPECT_NE(r, w);
  t.record(w, Track::client, Phase::submit, 0, 1);
  t.record(r, Track::client, Phase::submit, 0, 2);
  t.end_trace(w, 10);
  t.end_trace(r, 20);
  const auto spans = t.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].kind, Kind::write);
  EXPECT_EQ(spans[1].kind, Kind::read);
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  Tracer t;
  t.enable(4);
  const std::uint64_t id = t.begin_trace(Kind::read, 0);
  for (int i = 0; i < 10; ++i) {
    t.record(id, Track::client, Phase::other, i, i + 1);
  }
  const auto spans = t.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  // Oldest first, and only the newest four survive.
  EXPECT_EQ(spans.front().begin, 6);
  EXPECT_EQ(spans.back().begin, 9);
}

TEST(Tracer, BindLookupUnbind) {
  Tracer t;
  t.enable(16);
  const std::uint64_t id = t.begin_trace(Kind::read, 0);
  t.bind(3, 17, id);
  EXPECT_EQ(t.lookup(3, 17), id);
  EXPECT_EQ(t.lookup(3, 18), 0u);
  EXPECT_EQ(t.lookup(4, 17), 0u);
  t.unbind(3, 17);
  EXPECT_EQ(t.lookup(3, 17), 0u);
}

TEST(Tracer, ClearDropsRecordsKeepsEnabled) {
  Tracer t;
  t.enable(16);
  const std::uint64_t id = t.begin_trace(Kind::read, 0);
  t.record(id, Track::client, Phase::submit, 0, 1);
  t.clear();
  EXPECT_TRUE(t.enabled());
  EXPECT_TRUE(t.snapshot().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, PhaseMarkerTilesTheTimeline) {
  Tracer t;
  t.enable(16);
  const std::uint64_t id = t.begin_trace(Kind::read, 100);
  PhaseMarker ph(t, id, Track::client, 100);
  ph.mark(Phase::submit, 150);
  ph.mark(Phase::doorbell, 170);
  ph.mark(Phase::cq_wait, 400);
  t.end_trace(id, 400);

  const auto spans = t.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  sim::Duration sum = 0;
  for (const auto& s : spans) {
    if (s.phase != Phase::request) {
      sum += s.duration();
    } else {
      EXPECT_EQ(s.duration(), 300);
    }
  }
  EXPECT_EQ(sum, 300);  // phases partition [100, 400] exactly
  // Adjacent spans share boundaries.
  EXPECT_EQ(spans[0].end, spans[1].begin);
  EXPECT_EQ(spans[1].end, spans[2].begin);
}

TEST(Tracer, ChromeTraceJsonIsValid) {
  Tracer t;
  t.enable(16);
  const std::uint64_t id = t.begin_trace(Kind::read, 1234);
  t.record(id, Track::client, Phase::submit, 1234, 2345, 1, 7);
  t.record(id, Track::controller, Phase::media, 2400, 9000, 1, 7);
  t.end_trace(id, 9500);
  const std::string doc = t.chrome_trace_json();
  EXPECT_TRUE(json::valid(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("submit"), std::string::npos);
  // Track names ride on thread_name metadata events.
  EXPECT_NE(doc.find("thread_name"), std::string::npos);
  EXPECT_NE(doc.find("controller"), std::string::npos);

  Tracer empty;
  empty.enable(4);
  EXPECT_TRUE(json::valid(empty.chrome_trace_json()));
}

// --- driver integration -------------------------------------------------------

// One remote read through the distributed driver must produce the
// documented phase sequence on the client track, tile the request exactly,
// and carry correlated controller-side spans.
TEST(TracerIntegration, DriverReadEmitsPhaseSequence) {
  Tracer& tracer = Tracer::global();
  tracer.enable(1 << 10);
  tracer.clear();

  {
    Testbed tb(small_testbed(2));
    auto stack = bring_up(tb, 0, 1);
    ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
    write_read_verify(tb, *stack->client, 1, /*lba=*/64, /*bytes=*/4096, /*seed=*/5);
  }
  tracer.disable();
  const auto spans = tracer.snapshot();

  // write_read_verify issues one write then one read; pick the read trace.
  std::uint64_t read_trace = 0;
  for (const auto& s : spans) {
    if (s.phase == Phase::request && s.kind == Kind::read) read_trace = s.trace;
  }
  ASSERT_NE(read_trace, 0u) << "no read request span captured";

  std::vector<Phase> client_phases;
  sim::Duration client_sum = 0;
  sim::Duration end_to_end = -1;
  bool saw_controller_fetch = false;
  bool saw_controller_dma = false;
  for (const auto& s : spans) {
    if (s.trace != read_trace) continue;
    if (s.phase == Phase::request) {
      end_to_end = s.duration();
    } else if (s.track == Track::client) {
      client_phases.push_back(s.phase);
      client_sum += s.duration();
    } else if (s.track == Track::controller) {
      saw_controller_fetch |= s.phase == Phase::ctrl_fetch;
      saw_controller_dma |= s.phase == Phase::data_dma;
    }
  }

  const std::vector<Phase> want{Phase::submit,  Phase::sq_write,   Phase::doorbell,
                                Phase::cq_wait, Phase::completion, Phase::bounce_copy};
  EXPECT_EQ(client_phases, want);
  EXPECT_GE(end_to_end, 0);
  EXPECT_EQ(client_sum, end_to_end) << "client phases must tile the request";
  EXPECT_TRUE(saw_controller_fetch) << "controller SQE fetch not attributed to the trace";
  EXPECT_TRUE(saw_controller_dma) << "controller data DMA not attributed to the trace";
  tracer.clear();
}

// NVMe-oF traces correlate across the wire via the pseudo-qid binding: the
// initiator's client-track phases tile the request, and the target's
// software spans attach to the same trace.
TEST(TracerIntegration, NvmeofSpansCorrelate) {
  Tracer& tracer = Tracer::global();
  tracer.enable(1 << 10);
  tracer.clear();

  {
    Testbed tb(small_testbed(2));
    auto target = tb.wait(
        nvmeof::Target::start(tb.cluster(), tb.nvme_endpoint(), tb.network(), {}));
    ASSERT_TRUE(target.has_value()) << target.status().to_string();
    auto initiator = tb.wait(
        nvmeof::Initiator::connect(tb.cluster(), tb.network(), **target, 1, {}));
    ASSERT_TRUE(initiator.has_value()) << initiator.status().to_string();
    write_read_verify(tb, **initiator, 1, /*lba=*/8, /*bytes=*/4096, /*seed=*/11);
  }
  tracer.disable();
  const auto spans = tracer.snapshot();

  std::uint64_t read_trace = 0;
  for (const auto& s : spans) {
    if (s.phase == Phase::request && s.kind == Kind::read) read_trace = s.trace;
  }
  ASSERT_NE(read_trace, 0u);

  std::vector<Phase> client_phases;
  sim::Duration client_sum = 0;
  sim::Duration end_to_end = -1;
  bool target_media = false;
  for (const auto& s : spans) {
    if (s.trace != read_trace) continue;
    if (s.phase == Phase::request) {
      end_to_end = s.duration();
    } else if (s.track == Track::client) {
      client_phases.push_back(s.phase);
      client_sum += s.duration();
    } else if (s.track == Track::target) {
      target_media |= s.phase == Phase::media;
    }
  }
  const std::vector<Phase> want{Phase::submit, Phase::capsule_send, Phase::cq_wait,
                                Phase::completion};
  EXPECT_EQ(client_phases, want);
  EXPECT_EQ(client_sum, end_to_end);
  EXPECT_TRUE(target_media) << "target NVMe round trip not attributed to the trace";
  tracer.clear();
}

// --- flight recorder ----------------------------------------------------------

TEST(FlightRecorder, CapturesBelowPrintThreshold) {
  // The harness (test_flight_recorder.cpp) keeps a recorder armed; park its
  // state and use a private configuration for this test.
  log::set_flight_recorder(8);
  log::clear_flight_recorder();
  const log::Level old = log::threshold();
  log::set_threshold(log::Level::off);  // print nothing...
  NVS_LOG(trace, "fdrtest") << "captured " << 1;
  NVS_LOG(error, "fdrtest") << "captured " << 2;
  log::set_threshold(old);

  const auto lines = log::flight_recorder_lines();
  ASSERT_EQ(lines.size(), 2u);  // ...but capture everything
  EXPECT_NE(lines[0].find("captured 1"), std::string::npos);
  EXPECT_NE(lines[1].find("captured 2"), std::string::npos);
  EXPECT_NE(lines[0].find("fdrtest"), std::string::npos);
  log::set_flight_recorder(256);  // restore the harness configuration
}

TEST(FlightRecorder, RingKeepsOnlyTheNewestLines) {
  log::set_flight_recorder(3);
  log::clear_flight_recorder();
  const log::Level old = log::threshold();
  log::set_threshold(log::Level::off);
  for (int i = 0; i < 7; ++i) NVS_LOG(info, "fdrtest") << "line " << i;
  log::set_threshold(old);

  const auto lines = log::flight_recorder_lines();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("line 4"), std::string::npos);  // oldest survivor first
  EXPECT_NE(lines[2].find("line 6"), std::string::npos);

  log::clear_flight_recorder();
  EXPECT_TRUE(log::flight_recorder_lines().empty());
  EXPECT_TRUE(log::flight_recorder_enabled());
  log::set_flight_recorder(256);
}

TEST(FlightRecorder, DisableStopsCapture) {
  log::set_flight_recorder(4);
  log::disable_flight_recorder();
  EXPECT_FALSE(log::flight_recorder_enabled());
  NVS_LOG(error, "fdrtest") << "not captured";
  EXPECT_TRUE(log::flight_recorder_lines().empty());
  log::set_flight_recorder(256);
}

// --- NVS_LOG macro hygiene ----------------------------------------------------

TEST(LogMacro, SafeInUnbracedIfElse) {
  // With the old `if/else` expansion the `else` below bound to the macro's
  // internal else and this function returned the wrong value.
  bool else_taken = false;
  if (false)
    NVS_LOG(info, "test") << "never";
  else
    else_taken = true;
  EXPECT_TRUE(else_taken);

  // And the then-branch must still evaluate/stream normally.
  int evaluated = 0;
  const log::Level old = log::threshold();
  log::set_threshold(log::Level::error);
  if (true)
    NVS_LOG(error, "test") << "side effect " << ++evaluated;
  else
    ADD_FAILURE() << "else bound incorrectly";
  log::set_threshold(old);
  EXPECT_EQ(evaluated, 1);
}

TEST(LogMacro, DisabledLevelSkipsFormatting) {
  const log::Level old = log::threshold();
  log::disable_flight_recorder();
  log::set_threshold(log::Level::off);
  int evaluated = 0;
  NVS_LOG(trace, "test") << "expensive " << ++evaluated;
  EXPECT_EQ(evaluated, 0) << "operands of a disabled NVS_LOG must not evaluate";
  log::set_threshold(old);
  log::set_flight_recorder(256);
}

// --- LatencyRecorder hardening ------------------------------------------------

TEST(LatencyRecorder, MergeFoldsDistributions) {
  LatencyRecorder a;
  LatencyRecorder b;
  for (int i = 1; i <= 4; ++i) a.add(i * 100);
  for (int i = 1; i <= 4; ++i) b.add(i * 1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_EQ(a.min(), 100);
  EXPECT_EQ(a.max(), 4000);
  EXPECT_EQ(b.count(), 4u);  // source untouched
}

TEST(LatencyRecorder, SelfMergeDoublesSamples) {
  LatencyRecorder a;
  a.add(10);
  a.add(20);
  a.merge(a);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 20);
}

TEST(LatencyRecorder, PercentileClampsP) {
  LatencyRecorder a;
  a.add(100);
  a.add(200);
  EXPECT_DOUBLE_EQ(a.percentile(-10), a.percentile(0));
  EXPECT_DOUBLE_EQ(a.percentile(250), a.percentile(100));
  EXPECT_DOUBLE_EQ(a.percentile(0), 100.0);
  EXPECT_DOUBLE_EQ(a.percentile(100), 200.0);
}

// --- json validator -----------------------------------------------------------

TEST(JsonValidator, AcceptsAndRejects) {
  EXPECT_TRUE(json::valid("{}"));
  EXPECT_TRUE(json::valid(R"({"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":"x\nA"})"));
  EXPECT_TRUE(json::valid("  [1, 2, 3]  "));
  EXPECT_FALSE(json::valid(""));
  EXPECT_FALSE(json::valid("{"));
  EXPECT_FALSE(json::valid("{\"a\":}"));
  EXPECT_FALSE(json::valid("[1,]"));
  EXPECT_FALSE(json::valid("{} trailing"));
  EXPECT_FALSE(json::valid("\"unterminated"));
  EXPECT_FALSE(json::valid("{\"a\":01}"));
  EXPECT_FALSE(json::valid("nul"));
}

}  // namespace
}  // namespace nvmeshare::obs
