// Compiled into every test executable (see CMakeLists.txt): keeps the log
// flight recorder armed during each test and dumps the captured lines —
// every level, not just what the threshold printed — when a test fails.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/log.hpp"

namespace {

constexpr std::size_t kFlightLines = 256;

class FlightRecorderListener : public ::testing::EmptyTestEventListener {
  void OnTestStart(const ::testing::TestInfo& /*info*/) override {
    nvmeshare::log::clear_flight_recorder();
  }

  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (!info.result()->Failed()) return;
    std::fprintf(stderr, "[ flight ] %s.%s failed; last logged lines:\n",
                 info.test_suite_name(), info.name());
    nvmeshare::log::dump_flight_recorder(stderr);
  }
};

const bool kInstalled = [] {
  nvmeshare::log::set_flight_recorder(kFlightLines);
  ::testing::UnitTest::GetInstance()->listeners().Append(new FlightRecorderListener);
  return true;
}();

}  // namespace
