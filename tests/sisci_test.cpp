// Unit tests for the SISCI-style shared-memory API: segments, exports,
// remote connect, NTB mappings, CPU maps.
#include <gtest/gtest.h>

#include "sisci/sisci.hpp"
#include "sim/task.hpp"

namespace nvmeshare::sisci {
namespace {

struct ClusterFixture : ::testing::Test {
  ClusterFixture() : fabric(engine) {
    h0 = fabric.add_host("h0", 256 * MiB);
    h1 = fabric.add_host("h1", 256 * MiB);
    cs = fabric.add_cluster_switch("cs");
    ntb0 = *fabric.add_ntb(h0, 32, 1 * MiB);
    ntb1 = *fabric.add_ntb(h1, 32, 1 * MiB);
    (void)fabric.link_chips(fabric.ntb_chip(ntb0), cs);
    (void)fabric.link_chips(fabric.ntb_chip(ntb1), cs);
    cluster = std::make_unique<Cluster>(fabric);
  }

  sim::Engine engine;
  pcie::Fabric fabric;
  pcie::HostId h0 = 0, h1 = 0;
  pcie::ChipId cs = 0;
  pcie::NtbId ntb0 = 0, ntb1 = 0;
  std::unique_ptr<Cluster> cluster;
};

TEST_F(ClusterFixture, CreateAndConnectSegment) {
  auto seg = cluster->create_segment(h0, 42, 64 * KiB);
  ASSERT_TRUE(seg.has_value()) << seg.status().to_string();
  EXPECT_EQ(seg->node(), h0);
  EXPECT_EQ(seg->size(), 64 * KiB);
  EXPECT_EQ(seg->phys_addr() % 4096, 0u);

  auto remote = cluster->connect(h0, 42);
  ASSERT_TRUE(remote.has_value());
  EXPECT_EQ(remote->phys_addr, seg->phys_addr());
  EXPECT_EQ(remote->size, seg->size());
}

TEST_F(ClusterFixture, DuplicateSegmentIdRejected) {
  auto a = cluster->create_segment(h0, 7, 4096);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(cluster->create_segment(h0, 7, 4096).error_code(), Errc::already_exists);
  // Same id on another node is fine (ids are per-node).
  EXPECT_TRUE(cluster->create_segment(h1, 7, 4096).has_value());
}

TEST_F(ClusterFixture, SegmentReleaseUnexports) {
  {
    auto seg = cluster->create_segment(h0, 9, 4096);
    ASSERT_TRUE(seg.has_value());
    EXPECT_EQ(cluster->exported_count(), 1u);
  }
  EXPECT_EQ(cluster->exported_count(), 0u);
  EXPECT_EQ(cluster->connect(h0, 9).error_code(), Errc::not_found);
  // The memory was returned: a segment of the full arena size must fit.
  EXPECT_TRUE(cluster->create_segment(h0, 10, 100 * MiB).has_value());
}

TEST_F(ClusterFixture, SegmentLocalReadWrite) {
  auto seg = cluster->create_segment(h0, 1, 8192);
  ASSERT_TRUE(seg.has_value());
  Bytes data = make_pattern(512, 5);
  ASSERT_TRUE(seg->write(100, data).is_ok());
  Bytes out(512);
  ASSERT_TRUE(seg->read(100, out).is_ok());
  EXPECT_EQ(data, out);
  EXPECT_EQ(seg->write(8192 - 100, data).code(), Errc::out_of_range);
}

TEST_F(ClusterFixture, MapRemoteSegmentMovesRealBytes) {
  auto seg = cluster->create_segment(h1, 3, 64 * KiB);
  ASSERT_TRUE(seg.has_value());
  auto remote = cluster->connect(h1, 3);
  ASSERT_TRUE(remote.has_value());
  auto map = Map::create(*cluster, h0, *remote);
  ASSERT_TRUE(map.has_value()) << map.status().to_string();

  // h0 writes through the NTB window; the bytes appear in h1's segment.
  Bytes data = make_pattern(4096, 77);
  ASSERT_TRUE(fabric.poke(h0, map->addr() + 512, data).is_ok());
  Bytes out(4096);
  ASSERT_TRUE(seg->read(512, out).is_ok());
  EXPECT_EQ(data, out);
}

TEST_F(ClusterFixture, MapLocalSegmentIsDirect) {
  auto seg = cluster->create_segment(h0, 4, 4096);
  ASSERT_TRUE(seg.has_value());
  auto map = Map::create(*cluster, h0, seg->descriptor());
  ASSERT_TRUE(map.has_value());
  EXPECT_EQ(map->addr(), seg->phys_addr());  // no NTB window burned
}

TEST_F(ClusterFixture, NtbMappingMultiWindowSegment) {
  // 3 MiB segment with 1 MiB windows: needs 3 consecutive LUT entries.
  auto seg = cluster->create_segment(h1, 5, 3 * MiB);
  ASSERT_TRUE(seg.has_value());
  auto map = Map::create(*cluster, h0, seg->descriptor());
  ASSERT_TRUE(map.has_value());

  // Access near the end, crossing into the third window.
  Bytes data = make_pattern(4096, 99);
  ASSERT_TRUE(fabric.poke(h0, map->addr() + 2 * MiB + 4096, data).is_ok());
  Bytes out(4096);
  ASSERT_TRUE(seg->read(2 * MiB + 4096, out).is_ok());
  EXPECT_EQ(data, out);
}

TEST_F(ClusterFixture, NtbMappingReleaseFreesLutEntries) {
  auto seg = cluster->create_segment(h1, 6, 1 * MiB);
  ASSERT_TRUE(seg.has_value());
  const auto free_before = fabric.ntb_alloc_run(ntb0, 32);
  EXPECT_TRUE(free_before.has_value());  // all 32 free
  {
    auto mapping = NtbMapping::program(fabric, ntb0, h1, seg->phys_addr(), 1 * MiB);
    ASSERT_TRUE(mapping.has_value());
    EXPECT_FALSE(fabric.ntb_alloc_run(ntb0, 32).has_value());  // one in use
  }
  EXPECT_TRUE(fabric.ntb_alloc_run(ntb0, 32).has_value());  // released
}

TEST_F(ClusterFixture, MapFailsWithoutNtb) {
  // A third host without an NTB adapter cannot map remote memory.
  pcie::HostId h2 = fabric.add_host("h2", 64 * MiB);
  Cluster fresh(fabric);
  auto seg = fresh.create_segment(h0, 11, 4096);
  ASSERT_TRUE(seg.has_value());
  auto map = Map::create(fresh, h2, seg->descriptor());
  EXPECT_FALSE(map.has_value());
  EXPECT_EQ(map.error_code(), Errc::not_found);
}

TEST_F(ClusterFixture, DramAllocRespectedPerHost) {
  auto a = cluster->alloc_dram(h0, 4096);
  auto b = cluster->alloc_dram(h1, 4096);
  ASSERT_TRUE(a && b);
  ASSERT_TRUE(cluster->free_dram(h0, *a).is_ok());
  EXPECT_EQ(cluster->free_dram(h0, *b).code(), Errc::not_found);  // wrong host
}

TEST_F(ClusterFixture, MoveSemantics) {
  auto seg = cluster->create_segment(h0, 20, 4096);
  ASSERT_TRUE(seg.has_value());
  Segment moved = std::move(*seg);
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(cluster->exported_count(), 1u);
  Segment target;
  target = std::move(moved);
  EXPECT_TRUE(target.valid());
  EXPECT_EQ(cluster->exported_count(), 1u);
  target.release();
  EXPECT_EQ(cluster->exported_count(), 0u);
}

}  // namespace
}  // namespace nvmeshare::sisci
