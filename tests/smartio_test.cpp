// Unit tests for the SmartIO service: registry, acquisition semantics,
// BAR windows, DMA windows, hinted allocation, metadata registry.
#include <gtest/gtest.h>

#include "smartio/smartio.hpp"
#include "test_util.hpp"

namespace nvmeshare::smartio {
namespace {

using testutil::small_testbed;
using testutil::Testbed;

TEST(SmartIo, RegistersAndFindsDevice) {
  Testbed tb(small_testbed(2));
  auto info = tb.service().device(tb.device_id());
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->host, 0u);
  EXPECT_EQ(info->name, "nvme0");

  auto by_name = tb.service().find_device("nvme0");
  ASSERT_TRUE(by_name.has_value());
  EXPECT_EQ(by_name->id, tb.device_id());
  EXPECT_EQ(tb.service().find_device("nope").error_code(), Errc::not_found);
  EXPECT_GE(tb.service().list_devices().size(), 1u);
}

TEST(SmartIo, ExclusiveExcludesEveryone) {
  Testbed tb(small_testbed(2));
  auto ex = tb.service().acquire(tb.device_id(), AcquireMode::exclusive);
  ASSERT_TRUE(ex.has_value());
  EXPECT_EQ(tb.service().acquire(tb.device_id(), AcquireMode::shared).error_code(),
            Errc::permission_denied);
  EXPECT_EQ(tb.service().acquire(tb.device_id(), AcquireMode::exclusive).error_code(),
            Errc::permission_denied);
  ex->release();
  EXPECT_TRUE(tb.service().acquire(tb.device_id(), AcquireMode::shared).has_value());
}

TEST(SmartIo, SharedBlocksExclusive) {
  Testbed tb(small_testbed(2));
  auto s1 = tb.service().acquire(tb.device_id(), AcquireMode::shared);
  auto s2 = tb.service().acquire(tb.device_id(), AcquireMode::shared);
  ASSERT_TRUE(s1 && s2);
  EXPECT_EQ(tb.service().acquire(tb.device_id(), AcquireMode::exclusive).error_code(),
            Errc::permission_denied);
  s1->release();
  s2->release();
  EXPECT_TRUE(tb.service().acquire(tb.device_id(), AcquireMode::exclusive).has_value());
}

TEST(SmartIo, DowngradeLetsOthersIn) {
  Testbed tb(small_testbed(2));
  auto ex = tb.service().acquire(tb.device_id(), AcquireMode::exclusive);
  ASSERT_TRUE(ex.has_value());
  ASSERT_TRUE(ex->downgrade_to_shared().is_ok());
  EXPECT_EQ(ex->mode(), AcquireMode::shared);
  EXPECT_TRUE(tb.service().acquire(tb.device_id(), AcquireMode::shared).has_value());
  // Double downgrade is rejected.
  EXPECT_FALSE(ex->downgrade_to_shared().is_ok());
}

TEST(SmartIo, ReleaseOnDestruction) {
  Testbed tb(small_testbed(2));
  {
    auto ex = tb.service().acquire(tb.device_id(), AcquireMode::exclusive);
    ASSERT_TRUE(ex.has_value());
  }
  EXPECT_TRUE(tb.service().acquire(tb.device_id(), AcquireMode::exclusive).has_value());
}

TEST(SmartIo, BarWindowLocalIsDirect) {
  Testbed tb(small_testbed(2));
  auto ref = tb.service().acquire(tb.device_id(), AcquireMode::shared);
  ASSERT_TRUE(ref.has_value());
  auto bar = ref->map_bar(0, 0);
  ASSERT_TRUE(bar.has_value());
  auto raw = tb.fabric().bar_address(tb.nvme_endpoint(), 0);
  EXPECT_EQ(bar->addr(), *raw);
}

TEST(SmartIo, BarWindowRemoteReachesRegisters) {
  Testbed tb(small_testbed(2));
  auto ref = tb.service().acquire(tb.device_id(), AcquireMode::shared);
  ASSERT_TRUE(ref.has_value());
  auto bar = ref->map_bar(1, 0);
  ASSERT_TRUE(bar.has_value()) << bar.status().to_string();

  // Reading CAP through the window from host 1 returns the register value.
  Bytes out(8);
  ASSERT_TRUE(tb.fabric().peek(1, bar->addr() + nvme::reg::kCap, out).is_ok());
  const auto cap = load_pod<std::uint64_t>(out);
  EXPECT_EQ(cap & 0xFFFF, tb.config().nvme.max_queue_entries - 1u);  // MQES
}

TEST(SmartIo, DmaWindowLocalSegmentIsDirect) {
  Testbed tb(small_testbed(2));
  auto ref = tb.service().acquire(tb.device_id(), AcquireMode::shared);
  auto seg = tb.cluster().create_segment(0, 100, 64 * KiB);  // device host
  ASSERT_TRUE(ref && seg);
  auto win = ref->map_for_device(seg->descriptor());
  ASSERT_TRUE(win.has_value());
  EXPECT_EQ(win->device_addr(), seg->phys_addr());
}

TEST(SmartIo, DmaWindowRemoteSegmentTranslates) {
  Testbed tb(small_testbed(2));
  auto ref = tb.service().acquire(tb.device_id(), AcquireMode::shared);
  auto seg = tb.cluster().create_segment(1, 100, 64 * KiB);  // remote to device
  ASSERT_TRUE(ref && seg);
  auto win = ref->map_for_device(seg->descriptor());
  ASSERT_TRUE(win.has_value()) << win.status().to_string();
  EXPECT_NE(win->device_addr(), seg->phys_addr());

  // An access by the device host's address space lands in host 1's memory.
  auto resolved = tb.fabric().resolve(0, win->device_addr() + 128, 16);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->host, 1u);
  EXPECT_EQ(resolved->addr, seg->phys_addr() + 128);
}

TEST(SmartIo, HintPlacesSqDeviceSideCqLocal) {
  Testbed tb(small_testbed(3));
  // Requesting node 2; device lives in node 0.
  auto sq_node = tb.service().resolve_hint(2, tb.device_id(), AccessHint::sq());
  auto cq_node = tb.service().resolve_hint(2, tb.device_id(), AccessHint::cq());
  auto data_node = tb.service().resolve_hint(2, tb.device_id(), AccessHint::data());
  ASSERT_TRUE(sq_node && cq_node && data_node);
  EXPECT_EQ(*sq_node, 0u);    // device-side memory
  EXPECT_EQ(*cq_node, 2u);    // polled locally
  EXPECT_EQ(*data_node, 2u);  // touched by the CPU on every request

  auto seg = tb.service().create_segment_hinted(2, 55, 4096, tb.device_id(),
                                                AccessHint::sq());
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ(seg->node(), 0u);
}

TEST(SmartIo, MetadataRegistry) {
  Testbed tb(small_testbed(2));
  EXPECT_EQ(tb.service().device_metadata(tb.device_id()).error_code(), Errc::not_found);
  ASSERT_TRUE(tb.service().set_device_metadata(tb.device_id(), 1, 0xABC).is_ok());
  auto meta = tb.service().device_metadata(tb.device_id());
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->first, 1u);
  EXPECT_EQ(meta->second, 0xABCu);
  ASSERT_TRUE(tb.service().clear_device_metadata(tb.device_id()).is_ok());
  EXPECT_FALSE(tb.service().device_metadata(tb.device_id()).has_value());
}

TEST(SmartIo, UnregisterRemovesDeviceUnlessBorrowed) {
  Testbed tb(small_testbed(2));
  {
    auto ref = tb.service().acquire(tb.device_id(), AcquireMode::shared);
    ASSERT_TRUE(ref.has_value());
    EXPECT_EQ(tb.service().unregister_device(tb.device_id()).code(),
              Errc::permission_denied);
  }
  ASSERT_TRUE(tb.service().set_device_metadata(tb.device_id(), 0, 1).is_ok());
  ASSERT_TRUE(tb.service().unregister_device(tb.device_id()).is_ok());
  EXPECT_EQ(tb.service().device(tb.device_id()).error_code(), Errc::not_found);
  EXPECT_EQ(tb.service().device_metadata(tb.device_id()).error_code(), Errc::not_found);
  EXPECT_EQ(tb.service().unregister_device(tb.device_id()).code(), Errc::not_found);
}

TEST(SmartIo, UnknownDeviceRejected) {
  Testbed tb(small_testbed(2));
  EXPECT_EQ(tb.service().acquire(999, AcquireMode::shared).error_code(), Errc::not_found);
  EXPECT_EQ(tb.service().device(999).error_code(), Errc::not_found);
  EXPECT_EQ(tb.service().set_device_metadata(999, 0, 1).code(), Errc::not_found);
}

}  // namespace
}  // namespace nvmeshare::smartio
