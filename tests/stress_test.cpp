// Soak / torture tests: long mixed workloads with verification while the
// control plane churns (clients detaching and re-attaching mid-flight),
// across randomized cluster shapes. Anything that corrupts a byte, loses a
// completion, leaks a queue pair, or deadlocks the simulation fails here.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace nvmeshare {
namespace {

using namespace testutil;

class StressSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressSweep, MixedWorkloadsWithControlPlaneChurn) {
  Rng rng(GetParam());
  const auto hosts = static_cast<std::uint32_t>(rng.uniform(3) + 3);  // 3..5
  Testbed tb(small_testbed(hosts));
  auto manager = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), {}));
  ASSERT_TRUE(manager.has_value());

  // Attach a client on every non-device host.
  std::vector<std::unique_ptr<driver::Client>> clients;
  for (sisci::NodeId n = 1; n < hosts; ++n) {
    driver::Client::Config cc;
    cc.queue_depth = static_cast<std::uint32_t>(rng.uniform(6) + 2);
    auto c = tb.wait(driver::Client::attach(tb.service(), n, tb.device_id(), cc));
    ASSERT_TRUE(c.has_value()) << c.status().to_string();
    clients.push_back(std::move(*c));
  }

  // Round 1: concurrent verified jobs on disjoint regions.
  std::vector<sim::Future<Result<workload::JobResult>>> jobs;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    workload::JobSpec spec;
    spec.pattern = workload::JobSpec::Pattern::randrw;
    spec.read_fraction = 0.4 + 0.2 * rng.uniform01();
    spec.ops = 200;
    spec.queue_depth = clients[i]->max_queue_depth();
    spec.verify = true;
    spec.seed = rng.next();
    spec.region_blocks = 32 * 1024;
    spec.region_offset_blocks = i * 64 * 1024;
    jobs.push_back(workload::run_job(tb.cluster(), *clients[i],
                                     static_cast<sisci::NodeId>(i + 1), spec));
  }
  for (auto& job : jobs) {
    auto result = tb.wait(std::move(job), 300_s);
    ASSERT_TRUE(result.has_value()) << result.status().to_string();
    EXPECT_EQ(result->errors, 0u);
    EXPECT_EQ(result->verify_failures, 0u);
  }

  // Control-plane churn: detach a random client, re-attach it, repeat.
  for (int round = 0; round < 3; ++round) {
    const std::size_t victim = rng.uniform(clients.size());
    const auto node = static_cast<sisci::NodeId>(victim + 1);
    Status st = tb.wait_status(clients[victim]->detach(), 30_s);
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    clients[victim].reset();
    tb.engine().run_for(1_ms);

    driver::Client::Config cc;
    cc.queue_depth = static_cast<std::uint32_t>(rng.uniform(6) + 2);
    auto again = tb.wait(driver::Client::attach(tb.service(), node, tb.device_id(), cc));
    ASSERT_TRUE(again.has_value()) << again.status().to_string();
    clients[victim] = std::move(*again);

    // The re-attached client immediately passes verified I/O while the
    // others were untouched.
    write_read_verify(tb, *clients[victim], node, 9000 + 64 * round, 4096,
                      0xABC0 + static_cast<std::uint64_t>(round));
  }

  // Round 2: everyone again, after the churn.
  jobs.clear();
  for (std::size_t i = 0; i < clients.size(); ++i) {
    workload::JobSpec spec;
    spec.pattern = workload::JobSpec::Pattern::randrw;
    spec.ops = 120;
    spec.queue_depth = clients[i]->max_queue_depth();
    spec.verify = true;
    spec.seed = rng.next();
    spec.region_blocks = 32 * 1024;
    spec.region_offset_blocks = i * 64 * 1024;
    jobs.push_back(workload::run_job(tb.cluster(), *clients[i],
                                     static_cast<sisci::NodeId>(i + 1), spec));
  }
  for (auto& job : jobs) {
    auto result = tb.wait(std::move(job), 300_s);
    ASSERT_TRUE(result.has_value()) << result.status().to_string();
    EXPECT_EQ(result->errors, 0u);
    EXPECT_EQ(result->verify_failures, 0u);
  }
  // Queue-pair accounting survived the churn: one per live client + admin.
  EXPECT_EQ((*manager)->active_queue_pairs(), clients.size() + 1);
  EXPECT_FALSE(tb.controller().is_fatal());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSweep, ::testing::Values(0xA1, 0xB2, 0xC3));

TEST(Stress, SustainedDurationWorkload) {
  // A longer duration-bounded run (simulated 80 ms ≈ several thousand ops)
  // with all op types mixed, checking the stack never wedges.
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value());

  workload::JobSpec spec;
  spec.pattern = workload::JobSpec::Pattern::randrw;
  spec.ops = 0;
  spec.duration = 80_ms;
  spec.queue_depth = 16;
  spec.verify = true;
  spec.region_blocks = 16 * 1024;
  auto result = tb.wait(workload::run_job(tb.cluster(), *stack->client, 1, spec), 600_s);
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_GT(result->ops_completed, 1000u);
  EXPECT_EQ(result->errors, 0u);
  EXPECT_EQ(result->verify_failures, 0u);

  // Throughput sanity: QD16 on a 7-channel device must be near saturation.
  EXPECT_GT(result->iops(), 400'000.0);
}

}  // namespace
}  // namespace nvmeshare
