// Soak / torture tests: long mixed workloads with verification while the
// control plane churns (clients detaching and re-attaching mid-flight),
// across randomized cluster shapes, plus seeded chaos soaks with the fault
// injector active. Anything that corrupts a byte, loses a completion, leaks
// a queue pair, or deadlocks the simulation fails here.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault.hpp"
#include "mux/mux.hpp"
#include "pcie/fabric.hpp"
#include "test_util.hpp"

namespace nvmeshare {
namespace {

using namespace testutil;

class StressSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressSweep, MixedWorkloadsWithControlPlaneChurn) {
  Rng rng(GetParam());
  const auto hosts = static_cast<std::uint32_t>(rng.uniform(3) + 3);  // 3..5
  Testbed tb(small_testbed(hosts));
  auto manager = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), {}));
  ASSERT_TRUE(manager.has_value());

  // Attach a client on every non-device host.
  std::vector<std::unique_ptr<driver::Client>> clients;
  for (sisci::NodeId n = 1; n < hosts; ++n) {
    driver::Client::Config cc;
    cc.queue_depth = static_cast<std::uint32_t>(rng.uniform(6) + 2);
    auto c = tb.wait(driver::Client::attach(tb.service(), n, tb.device_id(), cc));
    ASSERT_TRUE(c.has_value()) << c.status().to_string();
    clients.push_back(std::move(*c));
  }

  // Round 1: concurrent verified jobs on disjoint regions.
  std::vector<sim::Future<Result<workload::JobResult>>> jobs;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    workload::JobSpec spec;
    spec.pattern = workload::JobSpec::Pattern::randrw;
    spec.read_fraction = 0.4 + 0.2 * rng.uniform01();
    spec.ops = 200;
    spec.queue_depth = clients[i]->max_queue_depth();
    spec.verify = true;
    spec.seed = rng.next();
    spec.region_blocks = 32 * 1024;
    spec.region_offset_blocks = i * 64 * 1024;
    jobs.push_back(workload::run_job(tb.cluster(), *clients[i],
                                     static_cast<sisci::NodeId>(i + 1), spec));
  }
  for (auto& job : jobs) {
    auto result = tb.wait(std::move(job), 300_s);
    ASSERT_TRUE(result.has_value()) << result.status().to_string();
    EXPECT_EQ(result->errors, 0u);
    EXPECT_EQ(result->verify_failures, 0u);
  }

  // Control-plane churn: detach a random client, re-attach it, repeat.
  for (int round = 0; round < 3; ++round) {
    const std::size_t victim = rng.uniform(clients.size());
    const auto node = static_cast<sisci::NodeId>(victim + 1);
    Status st = tb.wait_status(clients[victim]->detach(), 30_s);
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    clients[victim].reset();
    tb.engine().run_for(1_ms);

    driver::Client::Config cc;
    cc.queue_depth = static_cast<std::uint32_t>(rng.uniform(6) + 2);
    auto again = tb.wait(driver::Client::attach(tb.service(), node, tb.device_id(), cc));
    ASSERT_TRUE(again.has_value()) << again.status().to_string();
    clients[victim] = std::move(*again);

    // The re-attached client immediately passes verified I/O while the
    // others were untouched.
    write_read_verify(tb, *clients[victim], node, 9000 + 64 * round, 4096,
                      0xABC0 + static_cast<std::uint64_t>(round));
  }

  // Round 2: everyone again, after the churn.
  jobs.clear();
  for (std::size_t i = 0; i < clients.size(); ++i) {
    workload::JobSpec spec;
    spec.pattern = workload::JobSpec::Pattern::randrw;
    spec.ops = 120;
    spec.queue_depth = clients[i]->max_queue_depth();
    spec.verify = true;
    spec.seed = rng.next();
    spec.region_blocks = 32 * 1024;
    spec.region_offset_blocks = i * 64 * 1024;
    jobs.push_back(workload::run_job(tb.cluster(), *clients[i],
                                     static_cast<sisci::NodeId>(i + 1), spec));
  }
  for (auto& job : jobs) {
    auto result = tb.wait(std::move(job), 300_s);
    ASSERT_TRUE(result.has_value()) << result.status().to_string();
    EXPECT_EQ(result->errors, 0u);
    EXPECT_EQ(result->verify_failures, 0u);
  }
  // Queue-pair accounting survived the churn: one per live client + admin.
  EXPECT_EQ((*manager)->active_queue_pairs(), clients.size() + 1);
  EXPECT_FALSE(tb.controller().is_fatal());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSweep, ::testing::Values(0xA1, 0xB2, 0xC3));

TEST(Stress, SustainedDurationWorkload) {
  // A longer duration-bounded run (simulated 80 ms ≈ several thousand ops)
  // with all op types mixed, checking the stack never wedges.
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value());

  workload::JobSpec spec;
  spec.pattern = workload::JobSpec::Pattern::randrw;
  spec.ops = 0;
  spec.duration = 80_ms;
  spec.queue_depth = 16;
  spec.verify = true;
  spec.region_blocks = 16 * 1024;
  auto result = tb.wait(workload::run_job(tb.cluster(), *stack->client, 1, spec), 600_s);
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_GT(result->ops_completed, 1000u);
  EXPECT_EQ(result->errors, 0u);
  EXPECT_EQ(result->verify_failures, 0u);

  // Throughput sanity: QD16 on a 7-channel device must be near saturation.
  EXPECT_GT(result->iops(), 400'000.0);
}

// --- chaos soak -------------------------------------------------------------------

/// A plan that exercises several fault kinds probabilistically on top of a
/// verified workload. Every knob is seeded, so one plan string = one exact
/// chaos schedule.
constexpr std::string_view kChaosPlan =
    "seed=11;"
    "drop_posted_write:src=0,dst=1,prob=0.002,count=0;"
    "delay_posted_write:dst=1,prob=0.01,extra=20us,count=0;"
    "ntb_link_down:host=1,at=3ms,for=300us;"
    "ctrl_error:prob=0.002,count=0";

/// Run the chaos workload once and return the metrics snapshot taken the
/// instant the job finishes (before teardown, so both runs snapshot at the
/// same point in their instruction streams).
std::string chaos_run() {
  obs::Registry::global().reset_values();
  auto plan = fault::parse_plan(kChaosPlan);
  EXPECT_TRUE(plan.has_value()) << plan.status().to_string();
  fault::Injector::global().configure(std::move(*plan));

  std::string snapshot;
  {
    Testbed tb(small_testbed(2));
    driver::Client::Config cc;
    cc.cmd_timeout_ns = 500'000;
    cc.cmd_retry_limit = 6;
    cc.retry_backoff_ns = 50'000;
    cc.heartbeat_interval_ns = 200'000;
    cc.queue_depth = 4;
    driver::Manager::Config mc;
    mc.client_heartbeat_timeout_ns = 2'000'000;
    mc.csts_poll_interval_ns = 200'000;
    auto stack = bring_up(tb, 0, 1, cc, mc);
    EXPECT_TRUE(stack.has_value()) << stack.status().to_string();
    if (!stack) return {};
    pcie::Fabric* fab = &tb.fabric();
    fault::Injector::global().arm(
        tb.engine(), {.set_ntb_link = [fab](std::uint32_t host, bool up) {
          (void)fab->set_ntb_link(host, up);
        }});

    workload::JobSpec spec;
    spec.pattern = workload::JobSpec::Pattern::randrw;
    spec.ops = 1500;
    spec.queue_depth = 4;
    spec.verify = true;
    spec.seed = 99;
    auto result = workload::run_job_blocking(tb.cluster(), *stack->client, 1, spec);
    EXPECT_TRUE(result.has_value()) << result.status().to_string();
    if (result.has_value()) {
      EXPECT_EQ(result->errors, 0u) << "recovery must absorb every injected fault";
      EXPECT_EQ(result->verify_failures, 0u);
    }
    snapshot = obs::Registry::global().to_json();
  }
  fault::Injector::global().disarm();
  return snapshot;
}

TEST(Stress, ChaosSoakSurvivesInjectedFaults) {
  const std::string snapshot = chaos_run();
  ASSERT_FALSE(snapshot.empty());
  // The plan actually fired: at least the scheduled link flap is visible.
  EXPECT_NE(snapshot.find("\"nvmeshare.fault.link_downs\":1"), std::string::npos)
      << snapshot;
}

TEST(Stress, ChaosSameSeedRunsAreByteIdentical) {
  // Determinism is the whole point of seeded fault plans (docs/faults.md):
  // two runs of the same plan + workload seed must produce byte-identical
  // metrics snapshots, recovery machinery included.
  const std::string first = chaos_run();
  const std::string second = chaos_run();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// --- multi-queue chaos soak -------------------------------------------------------

/// The chaos soak again, but on a 4-channel client with doorbell coalescing
/// on: faults now hit individual queue pairs while the scheduler drains
/// work to the survivors, and the per-channel recovery paths (batch
/// re-create over the mailbox) all get exercised.
std::string chaos_run_multiqp() {
  obs::Registry::global().reset_values();
  auto plan = fault::parse_plan(kChaosPlan);
  EXPECT_TRUE(plan.has_value()) << plan.status().to_string();
  fault::Injector::global().configure(std::move(*plan));

  std::string snapshot;
  {
    Testbed tb(small_testbed(2));
    driver::Client::Config cc;
    cc.channels = 4;
    cc.coalesce_doorbells = true;
    cc.cmd_timeout_ns = 500'000;
    cc.cmd_retry_limit = 6;
    cc.retry_backoff_ns = 50'000;
    cc.heartbeat_interval_ns = 200'000;
    cc.queue_depth = 4;
    driver::Manager::Config mc;
    mc.client_heartbeat_timeout_ns = 2'000'000;
    mc.csts_poll_interval_ns = 200'000;
    auto stack = bring_up(tb, 0, 1, cc, mc);
    EXPECT_TRUE(stack.has_value()) << stack.status().to_string();
    if (!stack) return {};
    pcie::Fabric* fab = &tb.fabric();
    fault::Injector::global().arm(
        tb.engine(), {.set_ntb_link = [fab](std::uint32_t host, bool up) {
          (void)fab->set_ntb_link(host, up);
        }});

    workload::JobSpec spec;
    spec.pattern = workload::JobSpec::Pattern::randrw;
    spec.ops = 1500;
    spec.queue_depth = 16;  // all four channels busy
    spec.verify = true;
    spec.seed = 99;
    auto result = workload::run_job_blocking(tb.cluster(), *stack->client, 1, spec);
    EXPECT_TRUE(result.has_value()) << result.status().to_string();
    if (result.has_value()) {
      EXPECT_EQ(result->errors, 0u) << "recovery must absorb every injected fault";
      EXPECT_EQ(result->verify_failures, 0u);
    }
    snapshot = obs::Registry::global().to_json();
  }
  fault::Injector::global().disarm();
  return snapshot;
}

TEST(Stress, MultiQpChaosSoakSurvivesInjectedFaults) {
  const std::string snapshot = chaos_run_multiqp();
  ASSERT_FALSE(snapshot.empty());
  EXPECT_NE(snapshot.find("\"nvmeshare.fault.link_downs\":1"), std::string::npos)
      << snapshot;
  // All four channels actually carried work.
  for (int c = 0; c < 4; ++c) {
    const std::string key =
        "\"nvmeshare.engine.client.qp" + std::to_string(c) + ".doorbell_writes\":0";
    EXPECT_EQ(snapshot.find(key), std::string::npos)
        << "channel " << c << " never rang its doorbell";
  }
}

TEST(Stress, MultiQpChaosSameSeedRunsAreByteIdentical) {
  // The determinism pin extended to the multi-queue layout: channel
  // scheduling, doorbell batch boundaries, and per-channel recovery must
  // all be a pure function of the seed.
  const std::string first = chaos_run_multiqp();
  const std::string second = chaos_run_multiqp();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// --- tenant-multiplexing chaos soak -----------------------------------------------

/// The chaos soak once more, with the queue pair subdivided among four
/// tenants (MODEL.md §12): DRR dequeue, per-tenant QoS pacing, and
/// CID-window backpressure all run while faults hammer the transport and
/// the engine's retry/recovery machinery re-creates the pair underneath
/// the shares. Each tenant runs a verified mixed workload on a disjoint
/// LBA region of its TenantDevice.
std::string chaos_run_tenants() {
  obs::Registry::global().reset_values();
  auto plan = fault::parse_plan(kChaosPlan);
  EXPECT_TRUE(plan.has_value()) << plan.status().to_string();
  fault::Injector::global().configure(std::move(*plan));

  std::string snapshot;
  {
    Testbed tb(small_testbed(2));
    driver::Client::Config cc;
    cc.cmd_timeout_ns = 500'000;
    cc.cmd_retry_limit = 6;
    cc.retry_backoff_ns = 50'000;
    cc.heartbeat_interval_ns = 200'000;
    cc.queue_depth = 8;  // the share floor: tenants get windows in [8, 64)
    driver::Manager::Config mc;
    mc.client_heartbeat_timeout_ns = 2'000'000;
    mc.csts_poll_interval_ns = 200'000;
    auto stack = bring_up(tb, 0, 1, cc, mc);
    EXPECT_TRUE(stack.has_value()) << stack.status().to_string();
    if (!stack) return {};
    constexpr std::uint32_t kTenants = 4;
    std::vector<std::unique_ptr<mux::TenantDevice>> devs;
    for (std::uint32_t t = 1; t <= kTenants; ++t) {
      driver::Client::ShareRequest req;
      req.tenant = t;
      req.cid_count = 6;
      if (t == 1) req.qos_iops = 20'000;  // one paced tenant in the mix
      auto grant = tb.wait(stack->client->create_share(req));
      EXPECT_TRUE(grant.has_value()) << grant.status().to_string();
      if (!grant) return {};
      devs.push_back(std::make_unique<mux::TenantDevice>(
          *stack->client->multiplexer(), *stack->client, t));
    }

    // Arm after the grants so the plan's link outage (at=3ms from arm)
    // lands squarely in the tenant I/O phase, not the share mailbox RPCs.
    pcie::Fabric* fab = &tb.fabric();
    fault::Injector::global().arm(
        tb.engine(), {.set_ntb_link = [fab](std::uint32_t host, bool up) {
          (void)fab->set_ntb_link(host, up);
        }});

    std::vector<sim::Future<Result<workload::JobResult>>> jobs;
    for (std::uint32_t t = 0; t < kTenants; ++t) {
      workload::JobSpec spec;
      spec.pattern = workload::JobSpec::Pattern::randrw;
      spec.ops = 600;
      spec.queue_depth = 4;
      spec.verify = true;
      spec.region_blocks = 2048;
      spec.region_offset_blocks = static_cast<std::uint64_t>(t) * 2048;
      spec.seed = 99 + t;
      jobs.push_back(workload::run_job(tb.cluster(), *devs[t], 1, spec));
    }
    for (auto& job : jobs) {
      auto result = tb.wait(job, 120_s);
      EXPECT_TRUE(result.has_value()) << result.status().to_string();
      if (result.has_value()) {
        EXPECT_EQ(result->errors, 0u) << "recovery must absorb every injected fault";
        EXPECT_EQ(result->verify_failures, 0u);
      }
    }
    const auto& ms = stack->client->multiplexer()->stats();
    EXPECT_EQ(ms.staged_cmds.value(), ms.completed_cmds.value())
        << "no staged command may be stranded";
    EXPECT_EQ(ms.aborted_cmds.value(), 0u);
    snapshot = obs::Registry::global().to_json();
  }
  fault::Injector::global().disarm();
  return snapshot;
}

TEST(Stress, TenantMuxChaosSoakSurvivesInjectedFaults) {
  const std::string snapshot = chaos_run_tenants();
  ASSERT_FALSE(snapshot.empty());
  EXPECT_NE(snapshot.find("\"nvmeshare.fault.link_downs\":1"), std::string::npos)
      << snapshot;
  // The multiplexer actually carried the traffic (2400 tenant ops + the
  // QoS stalls of the paced tenant).
  EXPECT_NE(snapshot.find("\"nvmeshare.mux.completed_cmds\":"), std::string::npos);
  EXPECT_EQ(snapshot.find("\"nvmeshare.mux.completed_cmds\":0,"), std::string::npos);
}

TEST(Stress, TenantMuxChaosSameSeedRunsAreByteIdentical) {
  // The determinism pin extended to the tenant layer: DRR rounds, QoS
  // stalls, CID-window waits, and fault recovery under the shares must all
  // be a pure function of the seed.
  const std::string first = chaos_run_tenants();
  const std::string second = chaos_run_tenants();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// --- manager-crash takeover storm -------------------------------------------------

/// A failure storm aimed at the control plane (docs/MODEL.md §10): the
/// active manager is killed mid-run, its hot standby takes over, then THAT
/// manager is killed too and the second standby in the chain takes over —
/// all under verified multi-channel I/O from two clients, with a windowed
/// posted-write delay storm running across both outages.
constexpr std::string_view kTakeoverStormPlan =
    "seed=23;"
    "host_crash:host=0,at=2ms;"
    "host_crash:host=3,at=8ms;"
    "delay_posted_write:dst=1,extra=20us,prob=0.02,from=2ms,until=9ms";

std::string chaos_run_takeover_storm() {
  obs::Registry::global().reset_values();
  auto plan = fault::parse_plan(kTakeoverStormPlan);
  EXPECT_TRUE(plan.has_value()) << plan.status().to_string();
  fault::Injector::global().configure(std::move(*plan));

  std::string snapshot;
  {
    Testbed tb(small_testbed(5));
    driver::Manager::Config mc;
    mc.lease_duration_ns = 1_ms;
    mc.client_heartbeat_timeout_ns = 4_ms;
    auto manager = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), mc));
    EXPECT_TRUE(manager.has_value()) << manager.status().to_string();
    if (!manager) return {};

    driver::Client::Config cc;
    cc.channels = 2;
    cc.queue_depth = 4;
    cc.cmd_timeout_ns = 500'000;
    cc.cmd_retry_limit = 6;
    cc.retry_backoff_ns = 50'000;
    cc.heartbeat_interval_ns = 300'000;
    cc.mailbox_timeout_ns = 1_ms;
    cc.mailbox_retry_limit = 12;
    cc.mailbox_retry_backoff_ns = 100'000;
    auto c1 = tb.wait(driver::Client::attach(tb.service(), 1, tb.device_id(), cc));
    cc.channels = 1;
    auto c2 = tb.wait(driver::Client::attach(tb.service(), 2, tb.device_id(), cc));
    EXPECT_TRUE(c1.has_value() && c2.has_value());
    if (!c1 || !c2) return {};

    // Standby chain on hosts 3 and 4. Each standby needs its own metadata
    // segment id and private segment base: hinted allocation may land both
    // managers' segments in the same host, where ids must stay unique.
    std::vector<std::unique_ptr<driver::Manager>> standbys;
    for (std::uint32_t i = 0; i < 2; ++i) {
      driver::Manager::Config sc = mc;
      sc.metadata_segment_id = 0x4d455442 + i;
      sc.private_segment_base = 0x4e000000 + (i << 8);
      auto sb = tb.wait(
          driver::Manager::start_standby(tb.service(), 3 + i, tb.device_id(), sc));
      EXPECT_TRUE(sb.has_value()) << sb.status().to_string();
      if (!sb) return {};
      standbys.push_back(std::move(*sb));
    }
    fault::Injector::global().arm(tb.engine(), {});

    std::vector<sim::Future<Result<workload::JobResult>>> jobs;
    for (std::size_t i = 0; i < 2; ++i) {
      workload::JobSpec spec;
      spec.pattern = workload::JobSpec::Pattern::randrw;
      spec.ops = 0;
      spec.duration = 12_ms;  // spans both outages and both takeovers
      spec.queue_depth = 4;
      spec.verify = true;
      spec.seed = 0x51 + i;
      spec.region_blocks = 32 * 1024;
      spec.region_offset_blocks = i * 64 * 1024;
      driver::Client& cl = i == 0 ? **c1 : **c2;
      jobs.push_back(
          workload::run_job(tb.cluster(), cl, static_cast<sisci::NodeId>(i + 1), spec));
    }
    for (auto& job : jobs) {
      auto result = tb.wait(std::move(job), 600_s);
      EXPECT_TRUE(result.has_value()) << result.status().to_string();
      if (result.has_value()) {
        EXPECT_EQ(result->errors, 0u)
            << "in-flight I/O must never error across manager takeovers";
        EXPECT_EQ(result->verify_failures, 0u);
      }
    }
    tb.engine().run_for(2_ms);  // let the second takeover's aftermath settle

    // The chain promoted in order: host 3 served epoch 2, host 4 epoch 3.
    EXPECT_FALSE((*manager)->is_active());
    EXPECT_FALSE(standbys[0]->is_active());
    EXPECT_TRUE(standbys[1]->is_active());
    EXPECT_EQ(standbys[0]->stats().takeovers.value(), 1u);
    EXPECT_EQ(standbys[1]->stats().takeovers.value(), 1u);
    EXPECT_EQ(standbys[1]->epoch(), 3u);
    // Both clients heartbeated into each successor in time: nobody reaped.
    EXPECT_EQ(standbys[0]->stats().qps_reaped.value(), 0u);
    EXPECT_EQ(standbys[1]->stats().qps_reaped.value(), 0u);
    EXPECT_FALSE(tb.controller().is_fatal());

    snapshot = obs::Registry::global().to_json();
  }
  fault::Injector::global().disarm();
  return snapshot;
}

TEST(Stress, TakeoverStormSoakSurvives) {
  const std::string snapshot = chaos_run_takeover_storm();
  ASSERT_FALSE(snapshot.empty());
  EXPECT_NE(snapshot.find("\"nvmeshare.fault.host_crashes\":2"), std::string::npos)
      << snapshot;
  EXPECT_NE(snapshot.find("\"nvmeshare.manager.takeovers\":2"), std::string::npos)
      << snapshot;
}

TEST(Stress, TakeoverStormSameSeedRunsAreByteIdentical) {
  // The determinism pin for the HA machinery: lease renewal, staggered
  // claims, ring adoption, heartbeat re-homing and the windowed delay storm
  // must all be a pure function of the plan + workload seeds.
  const std::string first = chaos_run_takeover_storm();
  const std::string second = chaos_run_takeover_storm();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace nvmeshare
