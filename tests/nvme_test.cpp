// Unit tests for the NVMe controller model: spec structures, bring-up,
// admin command validation, queue mechanics (phase tags, wraparound),
// error reporting, and doorbell robustness.
#include <gtest/gtest.h>

#include "driver/bringup.hpp"
#include "nvme/block_store.hpp"
#include "nvme/queue.hpp"
#include "nvme/spec.hpp"
#include "test_util.hpp"

namespace nvmeshare::nvme {
namespace {

using testutil::Testbed;
using testutil::small_testbed;

TEST(Spec, EntrySizes) {
  EXPECT_EQ(sizeof(SubmissionEntry), 64u);
  EXPECT_EQ(sizeof(CompletionEntry), 16u);
}

TEST(Spec, PhaseBitManipulation) {
  CompletionEntry e;
  e.status_phase = static_cast<std::uint16_t>(kScLbaOutOfRange << 1);
  EXPECT_FALSE(e.phase());
  e.set_phase(true);
  EXPECT_TRUE(e.phase());
  EXPECT_EQ(e.status(), kScLbaOutOfRange);
  e.set_phase(false);
  EXPECT_EQ(e.status(), kScLbaOutOfRange);
}

TEST(Spec, StatusCodeComposition) {
  EXPECT_EQ(kScSuccess, 0);
  EXPECT_EQ(make_status(Sct::generic, 0x80), 0x80);
  EXPECT_EQ(make_status(Sct::command_specific, 0x01), 0x101);
  EXPECT_STREQ(status_name(kScInvalidQueueId), "invalid queue id");
}

TEST(Spec, IdentifyControllerRoundTrip) {
  ControllerInfo info;
  info.mdts_pages_log2 = 5;
  info.num_namespaces = 1;
  Bytes data = build_identify_controller(info);
  ASSERT_EQ(data.size(), 4096u);
  auto parsed = parse_identify_controller(data);
  EXPECT_EQ(parsed.vid, info.vid);
  EXPECT_EQ(parsed.mdts_pages_log2, 5);
  EXPECT_EQ(parsed.num_namespaces, 1u);
  EXPECT_NE(std::string(parsed.model).find("Optane"), std::string::npos);
}

TEST(Spec, IdentifyNamespaceRoundTrip) {
  NamespaceInfo info{123456, 512};
  Bytes data = build_identify_namespace(info);
  auto parsed = parse_identify_namespace(data);
  EXPECT_EQ(parsed.size_blocks, 123456u);
  EXPECT_EQ(parsed.block_size, 512u);
}

TEST(Spec, DoorbellOffsets) {
  EXPECT_EQ(sq_doorbell_offset(0), 0x1000u);
  EXPECT_EQ(cq_doorbell_offset(0), 0x1004u);
  EXPECT_EQ(sq_doorbell_offset(3), 0x1000u + 6 * 4);
  EXPECT_EQ(cq_doorbell_offset(3), 0x1000u + 7 * 4);
}

TEST(Spec, IoCommandBuilder) {
  auto e = make_io_rw(true, 7, 1, 0x1'0000'0001ULL, 8, 0x2000, 0x3000);
  EXPECT_EQ(e.opcode, static_cast<std::uint8_t>(IoOpcode::write));
  EXPECT_EQ(e.cid, 7);
  EXPECT_EQ(e.cdw10, 1u);           // low LBA
  EXPECT_EQ(e.cdw11, 1u);           // high LBA
  EXPECT_EQ(e.cdw12 & 0xFFFF, 7u);  // 0-based block count
}

TEST(BlockStore, SparseZeroReads) {
  BlockStore store(1000, 512);
  Bytes buf(512, std::byte{0xFF});
  ASSERT_TRUE(store.read(5, 1, buf).is_ok());
  for (auto b : buf) EXPECT_EQ(b, std::byte{0});
  EXPECT_EQ(store.resident_chunks(), 0u);
}

TEST(BlockStore, WriteReadAndZeroes) {
  BlockStore store(100'000, 512);
  Bytes data = make_pattern(8 * 512, 3);
  ASSERT_TRUE(store.write(64, 8, data).is_ok());
  Bytes out(8 * 512);
  ASSERT_TRUE(store.read(64, 8, out).is_ok());
  EXPECT_EQ(data, out);
  ASSERT_TRUE(store.write_zeroes(64, 8).is_ok());
  ASSERT_TRUE(store.read(64, 8, out).is_ok());
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(BlockStore, RangeChecks) {
  BlockStore store(100, 512);
  Bytes buf(512);
  EXPECT_EQ(store.read(100, 1, buf).code(), Errc::out_of_range);
  EXPECT_EQ(store.write(99, 2, Bytes(1024)).code(), Errc::out_of_range);
  EXPECT_EQ(store.read(0, 0, {}).code(), Errc::invalid_argument);
  EXPECT_EQ(store.read(0, 1, buf.empty() ? buf : ByteSpan(buf.data(), 100)).code(),
            Errc::invalid_argument);
}

TEST(BlockStore, CapacityEdgeAndOverflow) {
  BlockStore store(100, 512);
  Bytes buf(512);
  // The last valid block works; one past it does not.
  EXPECT_TRUE(store.read(99, 1, buf).is_ok());
  EXPECT_EQ(store.read(100, 1, buf).code(), Errc::out_of_range);
  // slba + nblocks must not wrap around u64 into an apparently-valid range.
  EXPECT_EQ(store.read(~0ull, 1, buf).code(), Errc::out_of_range);
  Bytes eight(8 * 512);
  EXPECT_EQ(store.read(~0ull - 3, 8, eight).code(), Errc::out_of_range);
  EXPECT_EQ(store.write(~0ull - 3, 8, eight).code(), Errc::out_of_range);
  EXPECT_EQ(store.write_zeroes(~0ull - 3, 8).code(), Errc::out_of_range);
}

// --- controller fixture --------------------------------------------------------

struct ControllerFixture : ::testing::Test {
  ControllerFixture() : tb(small_testbed(1)) {
    auto c = tb.wait(driver::BareController::init(tb.cluster(), tb.nvme_endpoint(), {}));
    EXPECT_TRUE(c.has_value()) << c.status().to_string();
    ctrl = std::move(*c);
  }

  Result<CompletionEntry> admin(const SubmissionEntry& e) {
    return tb.wait(ctrl->submit_admin(e));
  }

  Testbed tb;
  std::unique_ptr<driver::BareController> ctrl;
};

TEST_F(ControllerFixture, BringUpDiscoversGeometry) {
  EXPECT_TRUE(tb.controller().is_ready());
  EXPECT_EQ(ctrl->block_size(), 512u);
  EXPECT_EQ(ctrl->capacity_blocks(), tb.config().nvme.capacity_blocks);
  EXPECT_EQ(ctrl->max_transfer_bytes(), 128u * KiB);
  EXPECT_EQ(ctrl->granted_io_queues(), 31);  // 32 QPs minus the admin pair
}

TEST_F(ControllerFixture, CreateCqInvalidQid) {
  auto cqe = admin(make_create_io_cq(0, 40, 64, 0x10000, false, 0));
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status(), kScInvalidQueueId);  // beyond the granted count
}

TEST_F(ControllerFixture, CreateSqWithoutCqRejected) {
  auto cqe = admin(make_create_io_sq(0, 5, 64, 0x10000, 5));
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status(), kScInvalidQueueId);
}

TEST_F(ControllerFixture, CreateCqMisalignedBaseRejected) {
  auto cqe = admin(make_create_io_cq(0, 1, 64, 0x10008, false, 0));
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status(), kScInvalidField);
}

TEST_F(ControllerFixture, CreateCqBadSizeRejected) {
  auto cqe = admin(make_create_io_cq(0, 1, 1, 0x10000, false, 0));
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status(), kScInvalidQueueSize);
}

TEST_F(ControllerFixture, DeleteCqWithAttachedSqRejected) {
  auto sq_mem = tb.cluster().alloc_dram(0, 64 * 64, 4096);
  auto cq_mem = tb.cluster().alloc_dram(0, 64 * 16, 4096);
  ASSERT_TRUE(sq_mem && cq_mem);
  ASSERT_TRUE(admin(make_create_io_cq(0, 1, 64, *cq_mem, false, 0))->ok());
  ASSERT_TRUE(admin(make_create_io_sq(0, 1, 64, *sq_mem, 1))->ok());

  auto del_cq = admin(make_delete_io_cq(0, 1));
  ASSERT_TRUE(del_cq.has_value());
  EXPECT_EQ(del_cq->status(), kScInvalidQueueDeletion);

  ASSERT_TRUE(admin(make_delete_io_sq(0, 1))->ok());
  EXPECT_TRUE(admin(make_delete_io_cq(0, 1))->ok());
}

TEST_F(ControllerFixture, DuplicateQueueIdRejected) {
  auto cq_mem = tb.cluster().alloc_dram(0, 64 * 16, 4096);
  ASSERT_TRUE(admin(make_create_io_cq(0, 1, 64, *cq_mem, false, 0))->ok());
  auto again = admin(make_create_io_cq(0, 1, 64, *cq_mem, false, 0));
  EXPECT_EQ(again->status(), kScInvalidQueueId);
}

TEST_F(ControllerFixture, InvalidOpcodeCompletesWithError) {
  SubmissionEntry e;
  e.opcode = 0x7F;
  auto cqe = admin(e);
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status(), kScInvalidOpcode);
}

TEST_F(ControllerFixture, GetFeaturesReportsGrantedQueues) {
  SubmissionEntry e;
  e.opcode = static_cast<std::uint8_t>(AdminOpcode::get_features);
  e.cdw10 = static_cast<std::uint32_t>(FeatureId::number_of_queues);
  auto cqe = admin(e);
  ASSERT_TRUE(cqe.has_value() && cqe->ok());
  EXPECT_EQ((cqe->dw0 & 0xFFFF) + 1, 31u);
}

TEST_F(ControllerFixture, ArbitrationFeatureRoundTrips) {
  auto set = admin(make_set_arbitration(0, 4, 2, 5, 9));
  ASSERT_TRUE(set.has_value());
  EXPECT_TRUE(set->ok());

  SubmissionEntry get;
  get.opcode = static_cast<std::uint8_t>(AdminOpcode::get_features);
  get.cdw10 = static_cast<std::uint32_t>(FeatureId::arbitration);
  auto cqe = admin(get);
  ASSERT_TRUE(cqe.has_value() && cqe->ok());
  EXPECT_EQ(cqe->dw0, 4u | (2u << 8) | (5u << 16) | (9u << 24));
}

TEST_F(ControllerFixture, CreateSqCarriesPriorityClass) {
  // QPRIO rides in CDW11 bits 2:1; any class must be accepted regardless of
  // the arbitration mode the controller was enabled with.
  auto cq_mem = tb.cluster().alloc_dram(0, 64 * 16, 4096);
  auto sq_mem = tb.cluster().alloc_dram(0, 64 * 64, 4096);
  ASSERT_TRUE(cq_mem && sq_mem);
  ASSERT_TRUE(admin(make_create_io_cq(0, 1, 64, *cq_mem, false, 0))->ok());
  auto cqe = admin(make_create_io_sq(0, 1, 64, *sq_mem, 1, SqPriority::low));
  ASSERT_TRUE(cqe.has_value());
  EXPECT_TRUE(cqe->ok());
}

TEST_F(ControllerFixture, AbortReportsNotAborted) {
  SubmissionEntry e;
  e.opcode = static_cast<std::uint8_t>(AdminOpcode::abort);
  auto cqe = admin(e);
  ASSERT_TRUE(cqe.has_value() && cqe->ok());
  EXPECT_EQ(cqe->dw0 & 1u, 1u);
}

TEST_F(ControllerFixture, AsyncEventRequestParksForever) {
  SubmissionEntry e;
  e.opcode = static_cast<std::uint8_t>(AdminOpcode::async_event_request);
  auto cqe = admin(e);  // must time out: no events are ever raised
  EXPECT_FALSE(cqe.has_value());
  EXPECT_EQ(cqe.error_code(), Errc::timed_out);
}

TEST_F(ControllerFixture, InvalidSqDoorbellValueIsFatal) {
  pcie::Fabric& fabric = tb.fabric();
  Bytes doorbell(4);
  store_pod(doorbell, std::uint32_t{60000});  // way beyond queue size
  auto bar = fabric.bar_address(tb.nvme_endpoint(), 0);
  ASSERT_TRUE(bar.has_value());
  (void)fabric.post_write(fabric.cpu(0), *bar + sq_doorbell_offset(0), std::move(doorbell));
  tb.engine().run_for(1_ms);
  EXPECT_TRUE(tb.controller().is_fatal());
  EXPECT_FALSE(tb.controller().is_ready());
}

TEST_F(ControllerFixture, DoorbellForUnknownQueueIsFatal) {
  pcie::Fabric& fabric = tb.fabric();
  Bytes doorbell(4);
  store_pod(doorbell, std::uint32_t{0});
  auto bar = fabric.bar_address(tb.nvme_endpoint(), 0);
  (void)fabric.post_write(fabric.cpu(0), *bar + sq_doorbell_offset(20), std::move(doorbell));
  tb.engine().run_for(1_ms);
  EXPECT_TRUE(tb.controller().is_fatal());
}

// Submit `n` flushes one at a time through a tiny queue: exercises SQ/CQ
// wraparound and phase-tag inversion several times over.
struct TinyQueueFixture : ControllerFixture {
  void run_flushes(int n) {
    auto sq_mem = tb.cluster().alloc_dram(0, 4 * 64, 4096);
    auto cq_mem = tb.cluster().alloc_dram(0, 4 * 16, 4096);
    ASSERT_TRUE(sq_mem && cq_mem);
    auto qid = tb.wait(ctrl->create_queue_pair(*sq_mem, 4, *cq_mem, 4, std::nullopt));
    ASSERT_TRUE(qid.has_value()) << qid.status().to_string();

    QueuePair::Config qc;
    qc.qid = *qid;
    qc.sq_size = 4;
    qc.cq_size = 4;
    qc.sq_write_addr = *sq_mem;
    qc.cq_poll_addr = *cq_mem;
    qc.sq_doorbell_addr = ctrl->sq_doorbell(*qid);
    qc.cq_doorbell_addr = ctrl->cq_doorbell(*qid);
    qc.cpu = tb.fabric().cpu(0);
    QueuePair qp(tb.fabric(), qc);

    for (int i = 0; i < n; ++i) {
      auto cid = qp.push(make_flush(0, 1));
      ASSERT_TRUE(cid.has_value());
      ASSERT_TRUE(qp.ring_sq_doorbell().is_ok());
      const sim::Time deadline = tb.engine().now() + 1_s;
      std::optional<CompletionEntry> cqe;
      while (!cqe && tb.engine().now() < deadline) {
        tb.engine().run_until(tb.engine().now() + 1_us);
        cqe = qp.poll();
      }
      ASSERT_TRUE(cqe.has_value()) << "flush " << i << " never completed";
      EXPECT_TRUE(cqe->ok());
      EXPECT_EQ(cqe->sqid, *qid);
      ASSERT_TRUE(qp.ring_cq_doorbell().is_ok());
    }
  }
};

TEST_F(TinyQueueFixture, WraparoundAndPhaseFlipSurvive13Commands) { run_flushes(13); }

TEST_F(TinyQueueFixture, LongWraparound50Commands) { run_flushes(50); }

TEST_F(ControllerFixture, SpuriousCqeIsCountedNotSilentlyDropped) {
  // The regression this guards: poll() used to drop a completion whose CID
  // was not in flight without a trace, hiding duplicate/stale CQEs from
  // both operators and tests.
  auto sq_mem = tb.cluster().alloc_dram(0, 4 * 64, 4096);
  auto cq_mem = tb.cluster().alloc_dram(0, 4 * 16, 4096);
  ASSERT_TRUE(sq_mem && cq_mem);
  auto qid = tb.wait(ctrl->create_queue_pair(*sq_mem, 4, *cq_mem, 4, std::nullopt));
  ASSERT_TRUE(qid.has_value()) << qid.status().to_string();

  QueuePair::Config qc;
  qc.qid = *qid;
  qc.sq_size = 4;
  qc.cq_size = 4;
  qc.sq_write_addr = *sq_mem;
  qc.cq_poll_addr = *cq_mem;
  qc.sq_doorbell_addr = ctrl->sq_doorbell(*qid);
  qc.cq_doorbell_addr = ctrl->cq_doorbell(*qid);
  qc.cpu = tb.fabric().cpu(0);
  QueuePair qp(tb.fabric(), qc);

  // Two clean flushes: CIDs are issued and retired the normal way, and the
  // real CQ tail advances to slot 2 alongside the consumer's head.
  std::uint16_t last_cid = 0;
  for (int i = 0; i < 2; ++i) {
    auto cid = qp.push(make_flush(0, static_cast<std::uint16_t>(i + 1)));
    ASSERT_TRUE(cid.has_value());
    last_cid = *cid;
    ASSERT_TRUE(qp.ring_sq_doorbell().is_ok());
    const sim::Time deadline = tb.engine().now() + 1_s;
    std::optional<CompletionEntry> cqe;
    while (!cqe && tb.engine().now() < deadline) {
      tb.engine().run_until(tb.engine().now() + 1_us);
      cqe = qp.poll();
    }
    ASSERT_TRUE(cqe.has_value()) << "flush " << i << " never completed";
    ASSERT_TRUE(qp.ring_cq_doorbell().is_ok());
  }
  EXPECT_EQ(qp.stats().spurious_cqes.value(), 0u);
  EXPECT_EQ(qp.inflight(), 0u);

  // Inject a duplicate of the last completion into the next CQ slot with
  // the phase the consumer expects: a CQE for a CID that is not in flight.
  CompletionEntry dup;
  dup.sqid = *qid;
  dup.cid = last_cid;
  dup.set_phase(true);  // head has not wrapped yet
  Bytes raw(sizeof(CompletionEntry));
  store_pod(raw, dup);
  ASSERT_TRUE(tb.fabric()
                  .post_write(tb.fabric().cpu(0), *cq_mem + 2 * sizeof(CompletionEntry),
                              std::move(raw))
                  .has_value());
  tb.engine().run_for(1_ms);

  auto spurious = qp.poll();
  ASSERT_TRUE(spurious.has_value()) << "the duplicate must be consumed, not wedged";
  EXPECT_EQ(spurious->cid, last_cid);
  EXPECT_EQ(qp.stats().spurious_cqes.value(), 1u);
  EXPECT_EQ(qp.inflight(), 0u) << "a spurious CQE must not underflow inflight";
}

// --- CID allocation backpressure (the regression behind src/mux) -------------------
//
// The old allocator scanned `cid_busy_` in an unbounded loop; with every CID
// busy (a full queue, or a tenant's exhausted sub-range) the submitting task
// spun forever. These tests pin the contract that replaced it: a bounded
// scan that reports `resource_exhausted` and counts the rejection.

struct CidFixture : ControllerFixture {
  void build(std::uint16_t entries) {
    auto sq_mem = tb.cluster().alloc_dram(0, entries * 64ull, 4096);
    auto cq_mem = tb.cluster().alloc_dram(0, entries * 16ull, 4096);
    ASSERT_TRUE(sq_mem && cq_mem);
    auto qid = tb.wait(ctrl->create_queue_pair(*sq_mem, entries, *cq_mem, entries,
                                               std::nullopt));
    ASSERT_TRUE(qid.has_value()) << qid.status().to_string();
    QueuePair::Config qc;
    qc.qid = *qid;
    qc.sq_size = entries;
    qc.cq_size = entries;
    qc.sq_write_addr = *sq_mem;
    qc.cq_poll_addr = *cq_mem;
    qc.sq_doorbell_addr = ctrl->sq_doorbell(*qid);
    qc.cq_doorbell_addr = ctrl->cq_doorbell(*qid);
    qc.cpu = tb.fabric().cpu(0);
    qp = std::make_unique<QueuePair>(tb.fabric(), qc);
  }

  /// Drain every outstanding completion (rings both doorbells).
  void drain() {
    ASSERT_TRUE(qp->ring_sq_doorbell().is_ok());
    const sim::Time deadline = tb.engine().now() + 1_s;
    while (qp->inflight() > 0 && tb.engine().now() < deadline) {
      tb.engine().run_until(tb.engine().now() + 1_us);
      while (qp->poll()) {
      }
    }
    ASSERT_EQ(qp->inflight(), 0u);
    ASSERT_TRUE(qp->ring_cq_doorbell().is_ok());
  }

  std::unique_ptr<QueuePair> qp;
};

TEST_F(CidFixture, QueueFullPushReturnsBackpressureNotLivelock) {
  build(8);
  for (int i = 0; i < 7; ++i) {  // sq_full at sq_size - 1 in flight
    ASSERT_TRUE(qp->push(make_flush(0, 1)).has_value()) << "push " << i;
  }
  auto overflow = qp->push(make_flush(0, 1));
  ASSERT_FALSE(overflow.has_value());
  EXPECT_EQ(overflow.status().code(), Errc::resource_exhausted);
  drain();
  EXPECT_TRUE(qp->push(make_flush(0, 1)).has_value()) << "queue must accept work again";
  drain();
}

TEST_F(CidFixture, TenantRangeExhaustsWhileQueueHasRoom) {
  build(16);
  const CidRange range{2, 4};
  auto a = qp->push(make_flush(0, 1), range);
  auto b = qp->push(make_flush(0, 1), range);
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(range.contains(*a));
  EXPECT_TRUE(range.contains(*b));
  EXPECT_EQ(qp->free_in_range(range), 0u);
  ASSERT_FALSE(qp->sq_full()) << "the queue itself still has room";

  // The tenant's window is gone: bounded rejection, counted.
  auto exhausted = qp->push(make_flush(0, 1), range);
  ASSERT_FALSE(exhausted.has_value());
  EXPECT_EQ(exhausted.status().code(), Errc::resource_exhausted);
  EXPECT_EQ(qp->stats().cid_exhausted.value(), 1u);

  // Other CID space is unaffected: a disjoint tenant and the default
  // full-range path both still allocate.
  EXPECT_TRUE(qp->push(make_flush(0, 1), CidRange{4, 6}).has_value());
  EXPECT_TRUE(qp->push(make_flush(0, 1)).has_value());
  drain();
  EXPECT_EQ(qp->free_in_range(range), 2u);
  EXPECT_TRUE(qp->push(make_flush(0, 1), range).has_value());
  drain();
}

TEST_F(CidFixture, RangedPushRejectsMalformedRanges) {
  build(8);
  EXPECT_EQ(qp->push(make_flush(0, 1), CidRange{4, 4}).status().code(),
            Errc::invalid_argument);
  EXPECT_EQ(qp->push(make_flush(0, 1), CidRange{6, 3}).status().code(),
            Errc::invalid_argument);
  EXPECT_EQ(qp->push(make_flush(0, 1), CidRange{0, 9}).status().code(),
            Errc::invalid_argument);
  EXPECT_EQ(qp->stats().sqes_pushed.value(), 0u);
}

TEST_F(CidFixture, RestoreDropsOldEpochCompletionsViaSpuriousPath) {
  // A takeover adopts the ring cursors but not the previous operator's
  // in-flight CIDs; their late completions must be consumed as counted
  // spurious CQEs and must not corrupt the new operator's busy map.
  build(16);
  const CidRange tenant{2, 4};
  ASSERT_TRUE(qp->push(make_flush(0, 1), tenant).has_value());
  ASSERT_TRUE(qp->push(make_flush(0, 1), tenant).has_value());
  ASSERT_TRUE(qp->ring_sq_doorbell().is_ok());
  EXPECT_EQ(qp->inflight(), 2u);

  // The new epoch begins before the old completions are consumed.
  qp->restore(qp->ring_state());
  EXPECT_EQ(qp->inflight(), 0u);
  EXPECT_EQ(qp->free_in_range(tenant), tenant.count());

  // Let the controller post the old-epoch CQEs, then consume them.
  tb.engine().run_for(1_ms);
  int seen = 0;
  while (qp->poll()) ++seen;
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(qp->stats().spurious_cqes.value(), 2u);
  EXPECT_EQ(qp->inflight(), 0u) << "spurious CQEs must not underflow inflight";
  ASSERT_TRUE(qp->ring_cq_doorbell().is_ok());

  // The tenant window is fully usable in the new epoch.
  ASSERT_TRUE(qp->push(make_flush(0, 1), tenant).has_value());
  ASSERT_TRUE(qp->push(make_flush(0, 1), tenant).has_value());
  drain();
  EXPECT_EQ(qp->stats().spurious_cqes.value(), 2u) << "new-epoch CQEs route normally";
}

TEST_F(ControllerFixture, LbaArithmeticOverflowRejected) {
  // An slba near UINT64_MAX must fail with LBA Out of Range, not wrap
  // around into an apparently-valid range and touch the wrong blocks.
  auto sq_mem = tb.cluster().alloc_dram(0, 16 * 64, 4096);
  auto cq_mem = tb.cluster().alloc_dram(0, 16 * 16, 4096);
  auto buf = tb.cluster().alloc_dram(0, 8 * 4096, 4096);
  ASSERT_TRUE(sq_mem && cq_mem && buf);
  auto qid = tb.wait(ctrl->create_queue_pair(*sq_mem, 16, *cq_mem, 16, std::nullopt));
  ASSERT_TRUE(qid.has_value()) << qid.status().to_string();

  QueuePair::Config qc;
  qc.qid = *qid;
  qc.sq_size = 16;
  qc.cq_size = 16;
  qc.sq_write_addr = *sq_mem;
  qc.cq_poll_addr = *cq_mem;
  qc.sq_doorbell_addr = ctrl->sq_doorbell(*qid);
  qc.cq_doorbell_addr = ctrl->cq_doorbell(*qid);
  qc.cpu = tb.fabric().cpu(0);
  QueuePair qp(tb.fabric(), qc);

  auto submit = [&](std::uint64_t slba, std::uint16_t nblocks) {
    auto cid = qp.push(make_io_rw(false, 0, 1, slba, nblocks, *buf, 0));
    EXPECT_TRUE(cid.has_value());
    EXPECT_TRUE(qp.ring_sq_doorbell().is_ok());
    const sim::Time deadline = tb.engine().now() + 1_s;
    std::optional<CompletionEntry> cqe;
    while (!cqe && tb.engine().now() < deadline) {
      tb.engine().run_until(tb.engine().now() + 1_us);
      cqe = qp.poll();
    }
    EXPECT_TRUE(cqe.has_value());
    EXPECT_TRUE(qp.ring_cq_doorbell().is_ok());
    return cqe.value_or(CompletionEntry{}).status();
  };

  const std::uint64_t cap = ctrl->capacity_blocks();
  EXPECT_EQ(submit(cap - 1, 1), kScSuccess);  // last block is addressable
  EXPECT_EQ(submit(cap, 1), kScLbaOutOfRange);
  EXPECT_EQ(submit(~0ull, 1), kScLbaOutOfRange);
  EXPECT_EQ(submit(~0ull - 3, 8), kScLbaOutOfRange);  // slba + nblocks wraps
}

// --- register conformance ----------------------------------------------------------

struct RegisterFixture : ::testing::Test {
  RegisterFixture() : tb(small_testbed(1)) {
    auto base = tb.fabric().bar_address(tb.nvme_endpoint(), 0);
    EXPECT_TRUE(base.has_value());
    bar = *base;
  }

  std::uint64_t read_reg(std::uint64_t offset, std::size_t len) {
    Bytes out(len);
    EXPECT_TRUE(tb.fabric().peek(0, bar + offset, out).is_ok());
    std::uint64_t v = 0;
    std::memcpy(&v, out.data(), len);
    return v;
  }

  Testbed tb;
  std::uint64_t bar = 0;
};

TEST_F(RegisterFixture, CapFieldsAndHalfWordReads) {
  const std::uint64_t cap = read_reg(reg::kCap, 8);
  EXPECT_EQ(cap & 0xFFFF, tb.config().nvme.max_queue_entries - 1u);  // MQES
  EXPECT_NE(cap & (1ull << 16), 0u);                                // CQR
  EXPECT_NE(cap & (1ull << 17), 0u);                                // AMS: WRR w/ urgent
  EXPECT_NE(cap & (1ull << 37), 0u);                                // CSS: NVM
  // A 4-byte read of either half must return that half.
  EXPECT_EQ(read_reg(reg::kCap, 4), cap & 0xFFFFFFFFu);
  EXPECT_EQ(read_reg(reg::kCap + 4, 4), cap >> 32);
}

TEST_F(RegisterFixture, VersionRegister) {
  EXPECT_EQ(read_reg(reg::kVs, 4), 0x00010400u);  // NVMe 1.4
}

TEST_F(RegisterFixture, AsqAcqAcceptSplit32BitWrites) {
  pcie::Fabric& fabric = tb.fabric();
  auto write32 = [&](std::uint64_t off, std::uint32_t v) {
    Bytes b(4);
    store_pod(b, v);
    (void)fabric.post_write(fabric.cpu(0), bar + off, std::move(b));
  };
  write32(reg::kAsq, 0xAAAA0000u);
  write32(reg::kAsq + 4, 0x1u);
  write32(reg::kAcq, 0xBBBB0000u);
  write32(reg::kAcq + 4, 0x2u);
  tb.engine().run();
  EXPECT_EQ(read_reg(reg::kAsq, 8), 0x1AAAA0000ull);
  EXPECT_EQ(read_reg(reg::kAcq, 8), 0x2BBBB0000ull);
}

TEST_F(RegisterFixture, MsixTableReadback) {
  pcie::Fabric& fabric = tb.fabric();
  Bytes entry(16);
  store_pod(entry, std::uint64_t{0xFEE00000}, 0);
  store_pod(entry, std::uint32_t{0x42}, 8);
  store_pod(entry, std::uint32_t{0}, 12);  // unmasked
  (void)fabric.post_write(fabric.cpu(0), bar + reg::kMsixTable + 2 * reg::kMsixEntrySize,
                          std::move(entry));
  tb.engine().run();
  Bytes out(16);
  ASSERT_TRUE(fabric.peek(0, bar + reg::kMsixTable + 2 * reg::kMsixEntrySize, out).is_ok());
  EXPECT_EQ(load_pod<std::uint64_t>(out, 0), 0xFEE00000u);
  EXPECT_EQ(load_pod<std::uint32_t>(out, 8), 0x42u);
  EXPECT_EQ(load_pod<std::uint32_t>(out, 12), 0u);
}

TEST_F(RegisterFixture, ShutdownNotificationCompletes) {
  pcie::Fabric& fabric = tb.fabric();
  Bytes cc(4);
  store_pod(cc, std::uint32_t{1u << 14});  // CC.SHN = normal shutdown
  (void)fabric.post_write(fabric.cpu(0), bar + reg::kCc, std::move(cc));
  tb.engine().run();
  EXPECT_EQ(read_reg(reg::kCsts, 4) & 0xCu, kCstsShutdownComplete);
}

TEST_F(RegisterFixture, EnableWithMisalignedAdminQueueIsFatal) {
  pcie::Fabric& fabric = tb.fabric();
  auto write32 = [&](std::uint64_t off, std::uint32_t v) {
    Bytes b(4);
    store_pod(b, v);
    (void)fabric.post_write(fabric.cpu(0), bar + off, std::move(b));
  };
  auto write64 = [&](std::uint64_t off, std::uint64_t v) {
    Bytes b(8);
    store_pod(b, v);
    (void)fabric.post_write(fabric.cpu(0), bar + off, std::move(b));
  };
  write32(reg::kAqa, 31u | (31u << 16));
  write64(reg::kAsq, 0x10008);  // not page aligned
  write64(reg::kAcq, 0x20000);
  write32(reg::kCc, kCcEnable);
  tb.engine().run_for(1_ms);
  EXPECT_TRUE(tb.controller().is_fatal());
}

TEST_F(RegisterFixture, DoorbellWhileDisabledIsIgnored) {
  pcie::Fabric& fabric = tb.fabric();
  Bytes db(4);
  store_pod(db, std::uint32_t{5});
  (void)fabric.post_write(fabric.cpu(0), bar + sq_doorbell_offset(0), std::move(db));
  tb.engine().run_for(1_ms);
  EXPECT_FALSE(tb.controller().is_fatal());  // not ready: write dropped, not fatal
  EXPECT_EQ(tb.controller().stats().doorbell_writes, 1u);
}

}  // namespace
}  // namespace nvmeshare::nvme
