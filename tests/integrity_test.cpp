// End-to-end data integrity (docs/MODEL.md §7): checksum vectors, DIF tuple
// generation/verification, BlockStore protection-information storage, and
// controller-level PRACT/PRCHK + vendor-scrub semantics.
#include <gtest/gtest.h>

#include <cstring>

#include "driver/bringup.hpp"
#include "fault/fault.hpp"
#include "integrity/integrity.hpp"
#include "nvme/block_store.hpp"
#include "nvme/queue.hpp"
#include "nvme/spec.hpp"
#include "test_util.hpp"

namespace nvmeshare {
namespace {

using testutil::Testbed;
using testutil::TestbedConfig;
using testutil::small_testbed;

ConstByteSpan as_bytes(const char* s) {
  return {reinterpret_cast<const std::byte*>(s), std::strlen(s)};
}

// --- checksum vectors -------------------------------------------------------------

TEST(Checksums, Crc16T10DifCheckValue) {
  // The catalogue check value for CRC-16/T10-DIF over "123456789".
  EXPECT_EQ(integrity::crc16_t10dif(as_bytes("123456789")), 0xD0DB);
  EXPECT_EQ(integrity::crc16_t10dif({}), 0x0000);
}

TEST(Checksums, Crc32cCheckValue) {
  // The catalogue check value for CRC-32C (Castagnoli) over "123456789".
  EXPECT_EQ(integrity::crc32c(as_bytes("123456789")), 0xE3069283u);
  EXPECT_EQ(integrity::crc32c({}), 0x00000000u);
}

TEST(Checksums, SensitiveToEveryByte) {
  Bytes data = make_pattern(4096, 99);
  const std::uint16_t guard = integrity::crc16_t10dif(data);
  const std::uint32_t digest = integrity::crc32c(data);
  for (std::size_t i : {std::size_t{0}, std::size_t{2048}, std::size_t{4095}}) {
    Bytes mutated = data;
    mutated[i] ^= std::byte{0x01};
    EXPECT_NE(integrity::crc16_t10dif(mutated), guard) << "byte " << i;
    EXPECT_NE(integrity::crc32c(mutated), digest) << "byte " << i;
  }
}

// --- DIF tuples -------------------------------------------------------------------

TEST(ProtectionInfo, GenerateVerifyRoundTrip) {
  Bytes block = make_pattern(512, 7);
  const auto pi = integrity::generate_pi(block, 12345);
  EXPECT_EQ(pi.app_tag, integrity::kDefaultAppTag);
  EXPECT_EQ(pi.ref_tag, 12345u);
  EXPECT_EQ(integrity::verify_pi(pi, block, 12345), integrity::PiCheck::ok);
}

TEST(ProtectionInfo, Type1RefTagIsLowLbaBits) {
  Bytes block(512);
  const auto pi = integrity::generate_pi(block, 0x1'2345'6789ULL);
  EXPECT_EQ(pi.ref_tag, 0x2345'6789u);  // truncated to 32 bits, like Type 1
}

TEST(ProtectionInfo, DetectsEachFieldMismatch) {
  Bytes block = make_pattern(512, 8);
  const auto pi = integrity::generate_pi(block, 500);

  Bytes corrupted = block;
  corrupted[100] ^= std::byte{0x40};
  EXPECT_EQ(integrity::verify_pi(pi, corrupted, 500), integrity::PiCheck::guard_mismatch);

  // Same data read back at the wrong LBA: guard matches, ref tag does not.
  EXPECT_EQ(integrity::verify_pi(pi, block, 501), integrity::PiCheck::ref_tag_mismatch);

  auto wrong_app = pi;
  wrong_app.app_tag = 0x1111;
  EXPECT_EQ(integrity::verify_pi(wrong_app, block, 500),
            integrity::PiCheck::app_tag_mismatch);
}

TEST(ProtectionInfo, ChecksRunInSpecPrecedenceOrder) {
  // Everything wrong at once: guard wins, then app tag, then ref tag.
  Bytes block = make_pattern(512, 9);
  auto pi = integrity::generate_pi(block, 7);
  pi.guard ^= 0xFFFF;
  pi.app_tag ^= 0xFFFF;
  EXPECT_EQ(integrity::verify_pi(pi, block, 8), integrity::PiCheck::guard_mismatch);
  pi.guard = integrity::generate_pi(block, 7).guard;
  EXPECT_EQ(integrity::verify_pi(pi, block, 8), integrity::PiCheck::app_tag_mismatch);
}

TEST(ProtectionInfo, MaskDisablesIndividualChecks) {
  Bytes block = make_pattern(512, 10);
  auto pi = integrity::generate_pi(block, 40);
  Bytes corrupted = block;
  corrupted[0] ^= std::byte{0x01};

  // PRCHK with the guard bit clear must not see the guard mismatch.
  EXPECT_EQ(integrity::verify_pi(pi, corrupted, 40, {.guard = false}),
            integrity::PiCheck::ok);
  EXPECT_EQ(integrity::verify_pi(pi, block, 41, {.ref_tag = false}),
            integrity::PiCheck::ok);
  pi.app_tag = 0x2222;
  EXPECT_EQ(integrity::verify_pi(pi, block, 40, {.app_tag = false}),
            integrity::PiCheck::ok);
}

// --- fault vocabulary stays in sync (X-macro exhaustiveness) ----------------------

TEST(FaultKinds, EveryKindHasANameAndParses) {
  for (std::size_t i = 0; i < fault::kFaultKindCount; ++i) {
    const auto kind = static_cast<fault::FaultKind>(i);
    const char* name = fault::fault_kind_name(kind);
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "kind " << i << " missing from the name table";
    // The DSL must accept every kind name the enum knows about.
    auto plan = fault::parse_plan(name);
    ASSERT_TRUE(plan.has_value()) << name << ": " << plan.status().to_string();
    ASSERT_EQ(plan->faults.size(), 1u);
    EXPECT_EQ(plan->faults[0].kind, kind) << name;
  }
}

TEST(FaultKinds, CorruptionKindsParseWithFilters) {
  auto plan = fault::parse_plan(
      "seed=9;flip_dma_bits:src=0,dst=1,nth=4,count=2;"
      "torn_dma_write:dst=1,class=dram,nth=1;stale_read:src=0,prob=0.25,count=0");
  ASSERT_TRUE(plan.has_value()) << plan.status().to_string();
  ASSERT_EQ(plan->faults.size(), 3u);
  EXPECT_EQ(plan->faults[0].kind, fault::FaultKind::flip_dma_bits);
  EXPECT_EQ(plan->faults[0].count, 2u);
  EXPECT_EQ(plan->faults[1].kind, fault::FaultKind::torn_dma_write);
  EXPECT_EQ(plan->faults[1].write_class, fault::WriteClass::dram);
  EXPECT_EQ(plan->faults[2].kind, fault::FaultKind::stale_read);
  EXPECT_DOUBLE_EQ(plan->faults[2].probability, 0.25);
}

// --- BlockStore protection-information storage ------------------------------------

TEST(BlockStorePi, TuplesOnlyExistWhenFormatted) {
  nvme::BlockStore store(1000, 512);
  EXPECT_FALSE(store.pi_enabled());
  store.write_pi(5, {1, 2, 3});  // no-op while unformatted
  EXPECT_FALSE(store.read_pi(5).has_value());

  store.format_with_pi(true);
  EXPECT_TRUE(store.pi_enabled());
  EXPECT_FALSE(store.read_pi(5).has_value());  // format clears, nothing stored yet
  store.write_pi(5, {1, 2, 3});
  ASSERT_TRUE(store.read_pi(5).has_value());
  EXPECT_EQ(*store.read_pi(5), (integrity::ProtectionInfo{1, 2, 3}));

  store.format_with_pi(false);
  EXPECT_FALSE(store.read_pi(5).has_value());
}

TEST(BlockStorePi, ScrubCountsOnlyGenuineMismatches) {
  nvme::BlockStore store(1000, 512);
  store.format_with_pi(true);
  Bytes data = make_pattern(4 * 512, 11);
  ASSERT_TRUE(store.write(100, 4, data).is_ok());
  for (std::uint64_t b = 0; b < 4; ++b) {
    store.write_pi(100 + b, integrity::generate_pi(
                                ConstByteSpan(data).subspan(b * 512, 512), 100 + b));
  }
  auto clean = store.verify_stored_pi(100, 4);
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(*clean, 0u);
  // Deallocated blocks in the range are skipped, not counted as errors.
  auto wide = store.verify_stored_pi(90, 24);
  ASSERT_TRUE(wide.has_value());
  EXPECT_EQ(*wide, 0u);

  auto bad = *store.read_pi(102);
  bad.guard ^= 0x1;
  store.write_pi(102, bad);
  auto dirty = store.verify_stored_pi(100, 4);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_EQ(*dirty, 1u);
}

TEST(BlockStorePi, PlainOverwriteInvalidatesStoredTuples) {
  // A non-PRACT overwrite changes the data under a stored tuple; the store
  // must drop the tuple (deallocated semantics) instead of leaving a stale
  // one that a later scrub or PRCHK read would flag as corruption.
  nvme::BlockStore store(1000, 512);
  store.format_with_pi(true);
  Bytes data = make_pattern(512, 12);
  ASSERT_TRUE(store.write(50, 1, data).is_ok());
  store.write_pi(50, integrity::generate_pi(data, 50));
  ASSERT_TRUE(store.write(50, 1, make_pattern(512, 13)).is_ok());
  EXPECT_FALSE(store.read_pi(50).has_value());
  auto scrub = store.verify_stored_pi(50, 1);
  ASSERT_TRUE(scrub.has_value());
  EXPECT_EQ(*scrub, 0u);
}

TEST(BlockStorePi, WriteZeroesDropsTuples) {
  nvme::BlockStore store(1000, 512);
  store.format_with_pi(true);
  Bytes data = make_pattern(512, 14);
  ASSERT_TRUE(store.write(60, 1, data).is_ok());
  store.write_pi(60, integrity::generate_pi(data, 60));
  ASSERT_TRUE(store.write_zeroes(60, 1).is_ok());
  EXPECT_FALSE(store.read_pi(60).has_value());
}

TEST(BlockStorePi, ScrubRangeChecked) {
  nvme::BlockStore store(100, 512);
  store.format_with_pi(true);
  EXPECT_FALSE(store.verify_stored_pi(100, 1).has_value());
  EXPECT_FALSE(store.verify_stored_pi(~0ull, 8).has_value());  // no u64 wrap
}

// --- controller PRACT / PRCHK / vendor scrub --------------------------------------

/// BareController plus one I/O queue pair against a PI-formatted namespace.
struct PiControllerFixture : ::testing::Test {
  PiControllerFixture() : tb([] {
    TestbedConfig cfg = small_testbed(1);
    cfg.nvme.pi_enabled = true;  // "format with metadata"
    return cfg;
  }()) {
    auto c = tb.wait(driver::BareController::init(tb.cluster(), tb.nvme_endpoint(), {}));
    EXPECT_TRUE(c.has_value()) << c.status().to_string();
    ctrl = std::move(*c);

    auto sq_mem = tb.cluster().alloc_dram(0, 64 * 64, 4096);
    auto cq_mem = tb.cluster().alloc_dram(0, 64 * 16, 4096);
    EXPECT_TRUE(sq_mem && cq_mem);
    auto qid = tb.wait(ctrl->create_queue_pair(*sq_mem, 64, *cq_mem, 64, std::nullopt));
    EXPECT_TRUE(qid.has_value()) << qid.status().to_string();

    nvme::QueuePair::Config qc;
    qc.qid = *qid;
    qc.sq_size = 64;
    qc.cq_size = 64;
    qc.sq_write_addr = *sq_mem;
    qc.cq_poll_addr = *cq_mem;
    qc.sq_doorbell_addr = ctrl->sq_doorbell(*qid);
    qc.cq_doorbell_addr = ctrl->cq_doorbell(*qid);
    qc.cpu = tb.fabric().cpu(0);
    qp = std::make_unique<nvme::QueuePair>(tb.fabric(), qc);

    auto buf = tb.cluster().alloc_dram(0, 4096, 4096);
    EXPECT_TRUE(buf.has_value());
    buf_ = *buf;
  }

  /// Push one I/O command, ring, and poll its completion.
  nvme::CompletionEntry io(nvme::SubmissionEntry e) {
    auto cid = qp->push(e);
    EXPECT_TRUE(cid.has_value());
    EXPECT_TRUE(qp->ring_sq_doorbell().is_ok());
    const sim::Time deadline = tb.engine().now() + 1_s;
    std::optional<nvme::CompletionEntry> cqe;
    while (!cqe && tb.engine().now() < deadline) {
      tb.engine().run_until(tb.engine().now() + 1_us);
      cqe = qp->poll();
    }
    EXPECT_TRUE(cqe.has_value()) << "command never completed";
    EXPECT_TRUE(qp->ring_cq_doorbell().is_ok());
    return cqe.value_or(nvme::CompletionEntry{});
  }

  Result<nvme::CompletionEntry> admin(const nvme::SubmissionEntry& e) {
    return tb.wait(ctrl->submit_admin(e));
  }

  /// Write one pattern block at `lba` (PRACT: the controller generates and
  /// stores the tuple) and return the data written.
  Bytes pract_write(std::uint64_t lba, std::uint64_t seed) {
    Bytes data = make_pattern(512, seed);
    EXPECT_TRUE(tb.fabric().host_dram(0).write(buf_, data).is_ok());
    auto cqe = io(nvme::make_io_rw(true, 1, 1, lba, 1, buf_, 0, nvme::kPrinfoPract));
    EXPECT_TRUE(cqe.ok()) << nvme::status_name(cqe.status());
    return data;
  }

  static constexpr std::uint32_t kPrchkAll =
      nvme::kPrinfoPrchkGuard | nvme::kPrinfoPrchkApp | nvme::kPrinfoPrchkRef;

  Testbed tb;
  std::unique_ptr<driver::BareController> ctrl;
  std::unique_ptr<nvme::QueuePair> qp;
  std::uint64_t buf_ = 0;  // one-block DMA buffer (PRP1 only)
};

TEST_F(PiControllerFixture, PractWriteThenPrchkReadIsClean) {
  Bytes data = pract_write(42, 0xabc);
  ASSERT_TRUE(tb.controller().store().read_pi(42).has_value());
  EXPECT_EQ(*tb.controller().store().read_pi(42), integrity::generate_pi(data, 42));

  auto rd = io(nvme::make_io_rw(false, 2, 1, 42, 1, buf_, 0, kPrchkAll));
  EXPECT_TRUE(rd.ok()) << nvme::status_name(rd.status());
  Bytes out(512);
  ASSERT_TRUE(tb.fabric().host_dram(0).read(buf_, out).is_ok());
  EXPECT_EQ(out, data);
}

TEST_F(PiControllerFixture, CorruptTupleFailsPrchkReadWithSpecStatus) {
  Bytes data = pract_write(43, 0xdef);
  nvme::BlockStore& store = tb.controller().store();

  auto bad = integrity::generate_pi(data, 43);
  bad.guard ^= 0x0001;
  store.write_pi(43, bad);
  EXPECT_EQ(io(nvme::make_io_rw(false, 2, 1, 43, 1, buf_, 0, kPrchkAll)).status(),
            nvme::kScGuardCheckError);

  bad = integrity::generate_pi(data, 43);
  bad.app_tag = 0xBEEF;
  store.write_pi(43, bad);
  EXPECT_EQ(io(nvme::make_io_rw(false, 3, 1, 43, 1, buf_, 0, kPrchkAll)).status(),
            nvme::kScAppTagCheckError);

  bad = integrity::generate_pi(data, 43);
  bad.ref_tag = 44;
  store.write_pi(43, bad);
  EXPECT_EQ(io(nvme::make_io_rw(false, 4, 1, 43, 1, buf_, 0, kPrchkAll)).status(),
            nvme::kScRefTagCheckError);

  // With no PRCHK bits set the same read sails through.
  EXPECT_TRUE(io(nvme::make_io_rw(false, 5, 1, 43, 1, buf_, 0)).ok());
}

TEST_F(PiControllerFixture, DeallocatedBlocksSkipChecks) {
  // Never-written blocks have no tuple; PRCHK reads must not fail on them.
  auto rd = io(nvme::make_io_rw(false, 2, 1, 777, 1, buf_, 0, kPrchkAll));
  EXPECT_TRUE(rd.ok()) << nvme::status_name(rd.status());
}

TEST_F(PiControllerFixture, VendorScrubReportsMismatchCount) {
  Bytes data = pract_write(10, 0x111);
  pract_write(11, 0x222);
  pract_write(12, 0x333);

  auto clean = admin(nvme::make_vendor_scrub(1, 1, 0, 256));
  ASSERT_TRUE(clean.has_value());
  EXPECT_TRUE(clean->ok()) << nvme::status_name(clean->status());
  EXPECT_EQ(clean->dw0, 0u);

  // Corrupt two of the three stored tuples behind the controller's back.
  nvme::BlockStore& store = tb.controller().store();
  for (std::uint64_t lba : {10ull, 12ull}) {
    auto bad = *store.read_pi(lba);
    bad.guard ^= 0x8000;
    store.write_pi(lba, bad);
  }
  auto dirty = admin(nvme::make_vendor_scrub(2, 1, 0, 256));
  ASSERT_TRUE(dirty.has_value());
  EXPECT_EQ(dirty->status(), nvme::kScGuardCheckError);
  EXPECT_EQ(dirty->dw0, 2u);

  // Rewriting the blocks with PRACT heals them.
  pract_write(10, 0x111);
  pract_write(12, 0x333);
  auto healed = admin(nvme::make_vendor_scrub(3, 1, 0, 256));
  ASSERT_TRUE(healed.has_value());
  EXPECT_TRUE(healed->ok());
  EXPECT_EQ(healed->dw0, 0u);
  (void)data;
}

TEST_F(PiControllerFixture, ScrubRejectsOutOfRangeAndOverflow) {
  const std::uint64_t cap = tb.controller().store().capacity_blocks();
  auto oob = admin(nvme::make_vendor_scrub(1, 1, cap, 1));
  ASSERT_TRUE(oob.has_value());
  EXPECT_EQ(oob->status(), nvme::kScLbaOutOfRange);
  auto wrap = admin(nvme::make_vendor_scrub(2, 1, ~0ull - 3, 8));
  ASSERT_TRUE(wrap.has_value());
  EXPECT_EQ(wrap->status(), nvme::kScLbaOutOfRange);
}

}  // namespace
}  // namespace nvmeshare
