// Tenant multiplexing (src/mux) and namespace sharding (block::ShardedDevice):
// share-grant validation, DRR fairness, per-tenant QoS pacing, CID-window
// in-flight caps, stop/destruction draining, stripe arithmetic and request
// splitting, and the driver-level create_share/delete_share lifecycle over
// the v6 mailbox.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "block/sharded_device.hpp"
#include "mux/mux.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"

namespace nvmeshare {
namespace {

using namespace testutil;
using mux::QpMultiplexer;
using mux::ShareGrant;

sim::Task complete_after(sim::Engine& eng, sim::Promise<block::Completion> promise,
                         sim::Duration wire) {
  co_await sim::delay(eng, wire);
  promise.set(block::Completion{Status::ok(), wire});
}

/// Multiplexer over a fake dispatch path: every dequeue is logged with its
/// CID range; completions either arrive a fixed wire delay later or (in
/// manual mode) wait for release_one().
struct MuxHarness {
  explicit MuxHarness(QpMultiplexer::Config cfg = {}) {
    mux = std::make_unique<QpMultiplexer>(
        engine,
        [this](const block::Request& r, const nvme::CidRange& range) {
          dispatched.push_back({r, range});
          sim::Promise<block::Completion> p(engine);
          auto f = p.future();
          if (manual) {
            pending.push_back(std::move(p));
          } else {
            complete_after(engine, std::move(p), wire_ns);
          }
          return f;
        },
        stop, cfg);
  }

  void release_one(Status st = Status::ok()) {
    ASSERT_FALSE(pending.empty());
    auto p = std::move(pending.front());
    pending.pop_front();
    p.set(block::Completion{std::move(st), 0});
  }

  sim::Engine engine;
  std::shared_ptr<bool> stop = std::make_shared<bool>(false);
  bool manual = false;
  sim::Duration wire_ns = 100;
  std::vector<std::pair<block::Request, nvme::CidRange>> dispatched;
  std::deque<sim::Promise<block::Completion>> pending;
  std::unique_ptr<QpMultiplexer> mux;
};

ShareGrant make_grant(std::uint32_t tenant, nvme::CidRange range,
                      std::uint16_t weight = 1, std::uint32_t qos_iops = 0) {
  ShareGrant g;
  g.tenant = tenant;
  g.qid = 1;
  g.range = range;
  g.weight = weight;
  g.qos_iops = qos_iops;
  return g;
}

block::Request read_req(std::uint32_t nblocks) {
  block::Request r;
  r.op = block::Op::read;
  r.lba = 0;
  r.nblocks = nblocks;
  r.buffer_addr = 0x1000;
  return r;
}

TEST(MuxAttach, RejectsMalformedAndOverlappingGrants) {
  MuxHarness h;
  EXPECT_EQ(h.mux->attach_tenant(make_grant(1, nvme::CidRange{4, 4})).code(),
            Errc::invalid_argument);
  EXPECT_EQ(h.mux->attach_tenant(make_grant(1, nvme::CidRange{4, 8}, /*weight=*/0)).code(),
            Errc::invalid_argument);
  ASSERT_TRUE(h.mux->attach_tenant(make_grant(1, nvme::CidRange{4, 8})).is_ok());
  EXPECT_EQ(h.mux->attach_tenant(make_grant(1, nvme::CidRange{8, 12})).code(),
            Errc::already_exists);
  EXPECT_EQ(h.mux->attach_tenant(make_grant(2, nvme::CidRange{6, 10})).code(),
            Errc::invalid_argument)
      << "CID windows must stay disjoint";
  ASSERT_TRUE(h.mux->attach_tenant(make_grant(2, nvme::CidRange{8, 12})).is_ok());
  EXPECT_EQ(h.mux->tenant_count(), 2u);
  ASSERT_NE(h.mux->grant(1), nullptr);
  EXPECT_EQ(h.mux->grant(1)->range, (nvme::CidRange{4, 8}));
  EXPECT_EQ(h.mux->grant(99), nullptr);
}

TEST(MuxAttach, DetachRefusesBusyTenants) {
  MuxHarness h;
  h.manual = true;
  EXPECT_EQ(h.mux->detach_tenant(1).code(), Errc::not_found);
  ASSERT_TRUE(h.mux->attach_tenant(make_grant(1, nvme::CidRange{0, 4})).is_ok());

  auto f = h.mux->submit(1, read_req(1));
  h.engine.run();
  EXPECT_EQ(h.mux->tenant_backlog(1), 1u);
  EXPECT_EQ(h.mux->detach_tenant(1).code(), Errc::unavailable);

  h.release_one();
  h.engine.run();
  ASSERT_TRUE(f.ready());
  EXPECT_TRUE(f.try_take()->status.is_ok());
  EXPECT_EQ(h.mux->tenant_backlog(1), 0u);
  EXPECT_TRUE(h.mux->detach_tenant(1).is_ok());
  EXPECT_EQ(h.mux->tenant_count(), 0u);
}

TEST(MuxSubmit, UnknownTenantFailsTheCompletion) {
  MuxHarness h;
  auto f = h.mux->submit(7, read_req(1));
  h.engine.run();
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.try_take()->status.code(), Errc::not_found);
  EXPECT_TRUE(h.dispatched.empty());
}

TEST(MuxDrr, ServesTenantsProportionallyToWeight) {
  // Quantum 8 blocks, requests of 8 blocks: weight 1 earns one dequeue per
  // round, weight 2 earns two. The first submission dispatches eagerly
  // (the scheduler starts on demand); every later round must interleave
  // 1:2 regardless of ring depth.
  MuxHarness h;
  h.manual = true;  // hold completions so ring depth, not latency, drives DRR
  ASSERT_TRUE(h.mux->attach_tenant(make_grant(1, nvme::CidRange{0, 16}, 1)).is_ok());
  ASSERT_TRUE(h.mux->attach_tenant(make_grant(2, nvme::CidRange{16, 32}, 2)).is_ok());

  std::vector<sim::Future<block::Completion>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(h.mux->submit(1, read_req(8)));
  for (int i = 0; i < 12; ++i) futures.push_back(h.mux->submit(2, read_req(8)));
  h.engine.run();
  ASSERT_EQ(h.dispatched.size(), 18u);

  // Dispatch 0 is the eager one (tenant 1, the only backlogged ring then);
  // full rounds follow: one tenant-1 dequeue then two tenant-2 dequeues.
  EXPECT_EQ(h.dispatched[0].second, (nvme::CidRange{0, 16}));
  for (int round = 0; round < 4; ++round) {
    const std::size_t base = 1 + 3 * static_cast<std::size_t>(round);
    EXPECT_EQ(h.dispatched[base].second, (nvme::CidRange{0, 16})) << "round " << round;
    EXPECT_EQ(h.dispatched[base + 1].second, (nvme::CidRange{16, 32})) << "round " << round;
    EXPECT_EQ(h.dispatched[base + 2].second, (nvme::CidRange{16, 32})) << "round " << round;
  }
  EXPECT_GT(h.mux->stats().drr_rounds.value(), 0u);

  while (!h.pending.empty()) h.release_one();
  h.engine.run();
  for (auto& f : futures) {
    ASSERT_TRUE(f.ready());
    EXPECT_TRUE(f.try_take()->status.is_ok());
  }
  EXPECT_EQ(h.mux->stats().completed_cmds.value(), 18u);
}

TEST(MuxQos, TokenBucketPacesATenantToItsGrantedRate) {
  QpMultiplexer::Config cfg;
  cfg.qos_burst_cmds = 1;
  MuxHarness h(cfg);
  ASSERT_TRUE(
      h.mux->attach_tenant(make_grant(1, nvme::CidRange{0, 8}, 1, /*qos_iops=*/1000)).is_ok());

  std::vector<sim::Future<block::Completion>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(h.mux->submit(1, read_req(1)));
  h.engine.run();
  for (auto& f : futures) {
    ASSERT_TRUE(f.ready());
    EXPECT_TRUE(f.try_take()->status.is_ok());
  }
  // One command rides the burst; four wait a full 1 ms token each.
  EXPECT_EQ(h.mux->stats().deferred_cmds.value(), 4u);
  EXPECT_GE(h.mux->stats().throttle_ns.value(), 4'000'000u);
  EXPECT_GE(h.engine.now(), 4'000'000);
  EXPECT_LT(h.engine.now(), 4'010'000) << "pacing must not overshoot by a token";
}

TEST(MuxWindow, CidRangeCapsTenantInflight) {
  MuxHarness h;
  h.manual = true;
  ASSERT_TRUE(h.mux->attach_tenant(make_grant(1, nvme::CidRange{0, 2})).is_ok());

  std::vector<sim::Future<block::Completion>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(h.mux->submit(1, read_req(1)));
  h.engine.run();
  EXPECT_EQ(h.dispatched.size(), 2u) << "a 2-CID share holds at most 2 in flight";
  EXPECT_EQ(h.mux->tenant_backlog(1), 5u);

  h.release_one();
  h.engine.run();
  EXPECT_EQ(h.dispatched.size(), 3u) << "a completion frees one window slot";

  while (!h.pending.empty()) {
    h.release_one();
    h.engine.run();
  }
  for (auto& f : futures) {
    ASSERT_TRUE(f.ready());
    EXPECT_TRUE(f.try_take()->status.is_ok());
  }
  EXPECT_EQ(h.mux->tenant_backlog(1), 0u);
}

TEST(MuxStop, DrainResolvesStagedWorkAsAborted) {
  MuxHarness h;
  h.manual = true;
  ASSERT_TRUE(h.mux->attach_tenant(make_grant(1, nvme::CidRange{0, 1})).is_ok());

  auto wired = h.mux->submit(1, read_req(1));
  auto staged_a = h.mux->submit(1, read_req(1));
  auto staged_b = h.mux->submit(1, read_req(1));
  h.engine.run();
  ASSERT_EQ(h.dispatched.size(), 1u);

  *h.stop = true;
  h.mux->kick();
  h.engine.run();
  ASSERT_TRUE(staged_a.ready() && staged_b.ready());
  EXPECT_EQ(staged_a.try_take()->status.code(), Errc::aborted);
  EXPECT_EQ(staged_b.try_take()->status.code(), Errc::aborted);
  EXPECT_EQ(h.mux->stats().aborted_cmds.value(), 2u);

  // The command already on the wire still completes normally.
  h.release_one();
  h.engine.run();
  ASSERT_TRUE(wired.ready());
  EXPECT_TRUE(wired.try_take()->status.is_ok());

  // New work is refused at the door once stopped.
  auto late = h.mux->submit(1, read_req(1));
  h.engine.run();
  ASSERT_TRUE(late.ready());
  EXPECT_EQ(late.try_take()->status.code(), Errc::aborted);
}

TEST(MuxStop, DestructionAbortsStagedAndSurvivesParkedCoroutines) {
  MuxHarness h;
  h.manual = true;
  ASSERT_TRUE(h.mux->attach_tenant(make_grant(1, nvme::CidRange{0, 1})).is_ok());

  auto wired = h.mux->submit(1, read_req(1));
  auto staged = h.mux->submit(1, read_req(1));
  h.engine.run();  // scheduler parks with one command on the wire
  ASSERT_EQ(h.dispatched.size(), 1u);

  h.mux.reset();  // destroys the mux under a parked scheduler + live dispatch
  ASSERT_TRUE(staged.ready());
  EXPECT_EQ(staged.try_take()->status.code(), Errc::aborted);

  // The orphaned wire completion resolves the submitter without touching
  // the destroyed multiplexer.
  h.release_one();
  h.engine.run();
  ASSERT_TRUE(wired.ready());
  EXPECT_TRUE(wired.try_take()->status.is_ok());
}

TEST(MuxDevice, TenantDeviceMirrorsGeometryAndWindow) {
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();

  driver::Client::ShareRequest req;
  req.tenant = 3;
  req.cid_count = 4;
  auto grant = tb.wait(stack->client->create_share(req));
  ASSERT_TRUE(grant.has_value()) << grant.status().to_string();

  mux::TenantDevice dev(*stack->client->multiplexer(), *stack->client, 3);
  EXPECT_EQ(dev.name(), std::string(stack->client->name()) + "-t3");
  EXPECT_EQ(dev.block_size(), stack->client->block_size());
  EXPECT_EQ(dev.capacity_blocks(), stack->client->capacity_blocks());
  EXPECT_EQ(dev.max_queue_depth(), 4u);
}

// --- sharding ----------------------------------------------------------------

/// Records every sub-request and completes it immediately (optionally with
/// an injected error), so tests can check the split arithmetic exactly.
class FakeDisk final : public block::BlockDevice {
 public:
  FakeDisk(sim::Engine& engine, std::string name, std::uint64_t capacity)
      : engine_(engine), name_(std::move(name)), capacity_(capacity) {}

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::uint32_t block_size() const override { return 512; }
  [[nodiscard]] std::uint64_t capacity_blocks() const override { return capacity_; }
  [[nodiscard]] std::uint32_t max_queue_depth() const override { return 8; }
  [[nodiscard]] std::uint64_t max_transfer_bytes() const override { return 1 << 20; }

  sim::Future<block::Completion> submit(const block::Request& request) override {
    log.push_back(request);
    sim::Promise<block::Completion> p(engine_);
    auto f = p.future();
    p.set(block::Completion{fail, 10});
    return f;
  }

  std::vector<block::Request> log;
  Status fail = Status::ok();

 private:
  sim::Engine& engine_;
  std::string name_;
  std::uint64_t capacity_;
};

block::Completion shard_io(sim::Engine& engine, block::BlockDevice& dev,
                           const block::Request& req) {
  auto f = dev.submit(req);
  engine.run();
  auto done = f.try_take();
  EXPECT_TRUE(done.has_value());
  return done ? *done : block::Completion{Status(Errc::internal, "no completion"), 0};
}

TEST(Sharding, StripeArithmeticRoundRobinsChunks) {
  sim::Engine engine;
  FakeDisk a(engine, "a", 64), b(engine, "b", 70);
  block::ShardedDevice dev(engine, {&a, &b}, {.stripe_blocks = 4});

  EXPECT_EQ(dev.shard_count(), 2u);
  EXPECT_EQ(dev.shard_of(0), 0u);
  EXPECT_EQ(dev.shard_of(3), 0u);
  EXPECT_EQ(dev.shard_of(4), 1u);
  EXPECT_EQ(dev.shard_of(8), 0u);
  EXPECT_EQ(dev.local_lba(3), 3u);
  EXPECT_EQ(dev.local_lba(4), 0u);
  EXPECT_EQ(dev.local_lba(8), 4u);
  EXPECT_EQ(dev.local_lba(11), 7u);
  // 70 blocks truncate to 16 whole chunks; capacity spans both shards.
  EXPECT_EQ(dev.capacity_blocks(), 2u * 16 * 4);
  EXPECT_EQ(dev.max_queue_depth(), 16u);
}

TEST(Sharding, StraddlingRequestSplitsWithBufferAdvance) {
  sim::Engine engine;
  FakeDisk a(engine, "a", 64), b(engine, "b", 64);
  block::ShardedDevice dev(engine, {&a, &b}, {.stripe_blocks = 4});

  block::Request req;
  req.op = block::Op::read;
  req.lba = 2;
  req.nblocks = 8;
  req.buffer_addr = 0x1000;
  auto done = shard_io(engine, dev, req);
  ASSERT_TRUE(done.status.is_ok()) << done.status.to_string();

  // lba 2..3 -> shard a chunk 0; 4..7 -> shard b chunk 0; 8..9 -> shard a
  // chunk 1. The buffer cursor advances by each piece's byte length.
  ASSERT_EQ(a.log.size(), 2u);
  ASSERT_EQ(b.log.size(), 1u);
  EXPECT_EQ(a.log[0].lba, 2u);
  EXPECT_EQ(a.log[0].nblocks, 2u);
  EXPECT_EQ(a.log[0].buffer_addr, 0x1000u);
  EXPECT_EQ(b.log[0].lba, 0u);
  EXPECT_EQ(b.log[0].nblocks, 4u);
  EXPECT_EQ(b.log[0].buffer_addr, 0x1000u + 2 * 512);
  EXPECT_EQ(a.log[1].lba, 4u);
  EXPECT_EQ(a.log[1].nblocks, 2u);
  EXPECT_EQ(a.log[1].buffer_addr, 0x1000u + 6 * 512);
  EXPECT_EQ(dev.stats().splits.value(), 1u);
  EXPECT_EQ(dev.stats().sub_requests.value(), 3u);
}

TEST(Sharding, FlushFansOutToEveryShard) {
  sim::Engine engine;
  FakeDisk a(engine, "a", 64), b(engine, "b", 64), c(engine, "c", 64);
  block::ShardedDevice dev(engine, {&a, &b, &c}, {.stripe_blocks = 4});

  block::Request req;
  req.op = block::Op::flush;
  auto done = shard_io(engine, dev, req);
  EXPECT_TRUE(done.status.is_ok());
  EXPECT_EQ(a.log.size(), 1u);
  EXPECT_EQ(b.log.size(), 1u);
  EXPECT_EQ(c.log.size(), 1u);
  EXPECT_EQ(dev.stats().flush_fanout.value(), 3u);
}

TEST(Sharding, SubErrorSurfacesInTheMergedStatus) {
  sim::Engine engine;
  FakeDisk a(engine, "a", 64), b(engine, "b", 64);
  b.fail = Status(Errc::io_error, "shard b is unhappy");
  block::ShardedDevice dev(engine, {&a, &b}, {.stripe_blocks = 4});

  block::Request req;
  req.op = block::Op::write;
  req.lba = 0;
  req.nblocks = 8;  // one piece per shard
  req.buffer_addr = 0x2000;
  auto done = shard_io(engine, dev, req);
  EXPECT_EQ(done.status.code(), Errc::io_error);
  EXPECT_EQ(dev.stats().sub_errors.value(), 1u);
}

TEST(Sharding, ValidatesAgainstTheFederatedGeometry) {
  sim::Engine engine;
  FakeDisk a(engine, "a", 64), b(engine, "b", 64);
  block::ShardedDevice dev(engine, {&a, &b}, {.stripe_blocks = 4});

  block::Request req;
  req.op = block::Op::read;
  req.lba = dev.capacity_blocks() - 1;
  req.nblocks = 2;  // runs off the end of the federated namespace
  req.buffer_addr = 0x3000;
  auto done = shard_io(engine, dev, req);
  EXPECT_FALSE(done.status.is_ok());
  EXPECT_TRUE(a.log.empty());
  EXPECT_TRUE(b.log.empty());
}

// --- driver-level share lifecycle (mailbox v6) -------------------------------

TEST(MuxStack, SharesGetDisjointWindowsAboveTheOwnerFloor) {
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);  // queue_entries 64, queue_depth 32
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();

  driver::Client::ShareRequest req;
  req.tenant = 1;
  req.cid_count = 8;
  auto g1 = tb.wait(stack->client->create_share(req));
  ASSERT_TRUE(g1.has_value()) << g1.status().to_string();
  req.tenant = 2;
  auto g2 = tb.wait(stack->client->create_share(req));
  ASSERT_TRUE(g2.has_value()) << g2.status().to_string();

  // Tenant windows live in [queue_depth, queue_entries) and never overlap
  // each other or the owner's reserved floor.
  for (const auto& g : {*g1, *g2}) {
    EXPECT_GE(g.range.lo, 32u);
    EXPECT_LE(g.range.hi, 64u);
    EXPECT_EQ(g.range.count(), 8u);
  }
  EXPECT_FALSE(g1->range.overlaps(g2->range));
  ASSERT_NE(stack->client->multiplexer(), nullptr);
  EXPECT_EQ(stack->client->multiplexer()->tenant_count(), 2u);

  // The owner's own traffic keeps flowing below the floor.
  write_read_verify(tb, *stack->client, 1, 500, 4096, 0x0A11);
}

TEST(MuxStack, TenantIoRoundTripsThroughTheMultiplexer) {
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();

  driver::Client::ShareRequest req;
  req.tenant = 11;
  req.cid_count = 8;
  auto grant = tb.wait(stack->client->create_share(req));
  ASSERT_TRUE(grant.has_value()) << grant.status().to_string();

  mux::TenantDevice dev(*stack->client->multiplexer(), *stack->client, 11);
  write_read_verify(tb, dev, 1, 64, 4096, 0x7E47);
  const auto& stats = stack->client->multiplexer()->stats();
  EXPECT_GE(stats.completed_cmds.value(), 2u);
  EXPECT_EQ(stats.aborted_cmds.value(), 0u);
}

TEST(MuxStack, ShardedNamespaceOverTwoTenantShares) {
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();

  driver::Client::ShareRequest req;
  req.cid_count = 8;
  req.tenant = 1;
  ASSERT_TRUE(tb.wait(stack->client->create_share(req)).has_value());
  req.tenant = 2;
  ASSERT_TRUE(tb.wait(stack->client->create_share(req)).has_value());

  mux::TenantDevice t1(*stack->client->multiplexer(), *stack->client, 1);
  mux::TenantDevice t2(*stack->client->multiplexer(), *stack->client, 2);
  block::ShardedDevice ns(tb.engine(), {&t1, &t2}, {.stripe_blocks = 4});

  // Both shards back onto the *same* physical namespace here, so their
  // local LBA spaces alias each other; content checks must stay inside one
  // chunk (a single shard). Real deployments shard across distinct
  // controllers (bench/fig13_tenants.cpp) where the spaces are disjoint.
  write_read_verify(tb, ns, 1, 8, 2048, 0x5A5A);   // chunk 2: tenant 1 only
  write_read_verify(tb, ns, 1, 12, 2048, 0xA5A5);  // chunk 3: tenant 2 only

  // A straddling request splits across both tenant shares and completes.
  const std::uint64_t buf = alloc_pattern_buffer(tb, 1, 4096, 0x77);
  block::Request span;
  span.op = block::Op::read;
  span.lba = 6;
  span.nblocks = 8;
  span.buffer_addr = buf;
  auto done = do_io(tb, ns, span);
  ASSERT_TRUE(done.has_value()) << done.status().to_string();
  EXPECT_TRUE(done->status.is_ok()) << done->status.to_string();
  (void)tb.cluster().free_dram(1, buf);
  EXPECT_GE(ns.stats().splits.value(), 1u);
  EXPECT_GE(stack->client->multiplexer()->stats().completed_cmds.value(), 7u);
}

TEST(MuxStack, ShareLifecycleErrors) {
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();

  driver::Client::ShareRequest req;
  req.tenant = 1;
  req.cid_count = 0;
  auto bad = tb.wait(stack->client->create_share(req));
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.status().code(), Errc::invalid_argument);

  Status missing = tb.wait_status(stack->client->delete_share(42), 30_s);
  EXPECT_EQ(missing.code(), Errc::not_found);

  // One tenant claims the whole tenant CID space [32, 64); the next share
  // has nowhere to live until the first is deleted.
  req.cid_count = 32;
  auto hog = tb.wait(stack->client->create_share(req));
  ASSERT_TRUE(hog.has_value()) << hog.status().to_string();
  EXPECT_EQ(hog->range.count(), 32u);

  req.tenant = 2;
  req.cid_count = 8;
  auto crowded = tb.wait(stack->client->create_share(req));
  ASSERT_FALSE(crowded.has_value());
  EXPECT_EQ(crowded.status().code(), Errc::resource_exhausted);

  ASSERT_TRUE(tb.wait_status(stack->client->delete_share(1), 30_s).is_ok());
  auto retry = tb.wait(stack->client->create_share(req));
  ASSERT_TRUE(retry.has_value()) << retry.status().to_string();
  EXPECT_EQ(stack->client->multiplexer()->tenant_count(), 1u);
}

TEST(MuxStack, ReGrantMovesATenantIdempotently) {
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();

  driver::Client::ShareRequest req;
  req.tenant = 5;
  req.cid_count = 8;
  auto first = tb.wait(stack->client->create_share(req));
  ASSERT_TRUE(first.has_value());
  req.cid_count = 4;
  auto second = tb.wait(stack->client->create_share(req));
  ASSERT_TRUE(second.has_value()) << second.status().to_string();
  EXPECT_EQ(second->range.count(), 4u);
  EXPECT_EQ(stack->client->multiplexer()->tenant_count(), 1u);
  ASSERT_NE(stack->client->multiplexer()->grant(5), nullptr);
  EXPECT_EQ(stack->client->multiplexer()->grant(5)->range, second->range);
}

TEST(MuxStack, MultiChannelClientsRefuseShares) {
  Testbed tb(small_testbed(2));
  driver::Client::Config cc;
  cc.channels = 2;
  cc.queue_depth = 8;
  auto stack = bring_up(tb, 0, 1, cc);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();

  driver::Client::ShareRequest req;
  req.tenant = 1;
  auto grant = tb.wait(stack->client->create_share(req));
  ASSERT_FALSE(grant.has_value());
  EXPECT_EQ(grant.status().code(), Errc::unsupported)
      << "a share pins CIDs of one specific queue pair";
}

}  // namespace
}  // namespace nvmeshare
