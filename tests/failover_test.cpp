// Manager-failover lifecycle (promoted from the old examples/failover.cpp).
//
// The paper's design keeps the manager off the data path: it is only needed
// to create and delete queue pairs (Section V). These tests walk the full
// lifecycle of losing and replacing it:
//   1. manager on host 0, clients on hosts 1 and 2 doing verified I/O;
//   2. the manager dies — established clients keep doing I/O untouched;
//   3. a new client cannot attach (nobody serves the mailbox) and its
//      attach fails within its configured mailbox deadline;
//   4. a replacement manager cannot start while survivors hold the device
//      (SmartIO's exclusive acquisition protects the controller state);
//   5. after the survivors release the device, a new manager starts on a
//      *different* host and fresh clients attach again.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace nvmeshare {
namespace {

using namespace testutil;

/// One short verified random-r/w burst; any I/O error or corrupt byte fails.
void quick_io(Testbed& tb, driver::Client& client, sisci::NodeId node) {
  workload::JobSpec spec;
  spec.pattern = workload::JobSpec::Pattern::randrw;
  spec.ops = 50;
  spec.queue_depth = 2;
  spec.verify = true;
  auto result = workload::run_job_blocking(tb.cluster(), client, node, spec);
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_EQ(result->errors, 0u);
  EXPECT_EQ(result->verify_failures, 0u);
}

TEST(Failover, ManagerDeathAndHandover) {
  TestbedConfig cfg = small_testbed(4);
  Testbed tb(cfg);

  // [1] Normal operation: manager on host 0, clients on hosts 1 and 2.
  auto manager = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), {}));
  ASSERT_TRUE(manager.has_value()) << manager.status().to_string();
  auto c1 = tb.wait(driver::Client::attach(tb.service(), 1, tb.device_id(), {}));
  auto c2 = tb.wait(driver::Client::attach(tb.service(), 2, tb.device_id(), {}));
  ASSERT_TRUE(c1.has_value() && c2.has_value());
  quick_io(tb, **c1, 1);
  quick_io(tb, **c2, 2);

  // [2] The manager dies. Established clients operate the controller
  // through their own queue pairs — the manager is not on the data path —
  // so verified I/O must keep passing.
  manager->reset();
  tb.engine().run_for(1_ms);
  quick_io(tb, **c1, 1);
  quick_io(tb, **c2, 2);

  // [3] A new client cannot attach: the metadata segment is gone, and even
  // an optimistic retry loop must give up within its mailbox deadline.
  driver::Client::Config impatient;
  impatient.mailbox_timeout_ns = 5_ms;
  auto orphan =
      tb.wait(driver::Client::attach(tb.service(), 3, tb.device_id(), impatient), 60_s);
  EXPECT_FALSE(orphan.has_value()) << "attach without a manager must fail";

  // [4] A replacement manager is blocked while survivors hold shared device
  // references: exclusive acquisition would reset the controller under the
  // survivors' queues.
  auto blocked = tb.wait(driver::Manager::start(tb.service(), 3, tb.device_id(), {}));
  EXPECT_FALSE(blocked.has_value()) << "restart must be blocked by surviving clients";

  // [5] Survivors release the device; a replacement manager starts on a
  // different host, re-initializes the controller, and serves fresh
  // attachments.
  c1->reset();
  c2->reset();
  tb.engine().run_for(1_ms);
  auto manager2 = tb.wait(driver::Manager::start(tb.service(), 3, tb.device_id(), {}));
  ASSERT_TRUE(manager2.has_value()) << manager2.status().to_string();
  auto c3 = tb.wait(driver::Client::attach(tb.service(), 1, tb.device_id(), {}));
  ASSERT_TRUE(c3.has_value()) << c3.status().to_string();
  quick_io(tb, **c3, 1);
}

}  // namespace
}  // namespace nvmeshare
