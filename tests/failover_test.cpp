// Manager-failover lifecycle (promoted from the old examples/failover.cpp).
//
// The paper's design keeps the manager off the data path: it is only needed
// to create and delete queue pairs (Section V). These tests walk the full
// lifecycle of losing and replacing it:
//   1. manager on host 0, clients on hosts 1 and 2 doing verified I/O;
//   2. the manager dies — established clients keep doing I/O untouched;
//   3. a new client cannot attach (nobody serves the mailbox) and its
//      attach fails within its configured mailbox deadline;
//   4. a replacement manager cannot start while survivors hold the device
//      (SmartIO's exclusive acquisition protects the controller state);
//   5. after the survivors release the device, a new manager starts on a
//      *different* host and fresh clients attach again.
//
// The Takeover suite exercises the HA path (docs/MODEL.md §10) instead: a
// hot standby watches the active manager's lease and, when the manager is
// killed, takes over WITHOUT the survivors releasing the device — adopting
// the admin rings and every granted queue pair from the v5 journal and
// owner table.
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "test_util.hpp"

namespace nvmeshare {
namespace {

using namespace testutil;

/// One short verified random-r/w burst; any I/O error or corrupt byte fails.
void quick_io(Testbed& tb, driver::Client& client, sisci::NodeId node) {
  workload::JobSpec spec;
  spec.pattern = workload::JobSpec::Pattern::randrw;
  spec.ops = 50;
  spec.queue_depth = 2;
  spec.verify = true;
  auto result = workload::run_job_blocking(tb.cluster(), client, node, spec);
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_EQ(result->errors, 0u);
  EXPECT_EQ(result->verify_failures, 0u);
}

TEST(Failover, ManagerDeathAndHandover) {
  TestbedConfig cfg = small_testbed(4);
  Testbed tb(cfg);

  // [1] Normal operation: manager on host 0, clients on hosts 1 and 2.
  auto manager = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), {}));
  ASSERT_TRUE(manager.has_value()) << manager.status().to_string();
  auto c1 = tb.wait(driver::Client::attach(tb.service(), 1, tb.device_id(), {}));
  auto c2 = tb.wait(driver::Client::attach(tb.service(), 2, tb.device_id(), {}));
  ASSERT_TRUE(c1.has_value() && c2.has_value());
  quick_io(tb, **c1, 1);
  quick_io(tb, **c2, 2);

  // [2] The manager dies. Established clients operate the controller
  // through their own queue pairs — the manager is not on the data path —
  // so verified I/O must keep passing.
  manager->reset();
  tb.engine().run_for(1_ms);
  quick_io(tb, **c1, 1);
  quick_io(tb, **c2, 2);

  // [3] A new client cannot attach: the metadata segment is gone, and even
  // an optimistic retry loop must give up within its mailbox deadline.
  driver::Client::Config impatient;
  impatient.mailbox_timeout_ns = 5_ms;
  auto orphan =
      tb.wait(driver::Client::attach(tb.service(), 3, tb.device_id(), impatient), 60_s);
  EXPECT_FALSE(orphan.has_value()) << "attach without a manager must fail";

  // [4] A replacement manager is blocked while survivors hold shared device
  // references: exclusive acquisition would reset the controller under the
  // survivors' queues.
  auto blocked = tb.wait(driver::Manager::start(tb.service(), 3, tb.device_id(), {}));
  EXPECT_FALSE(blocked.has_value()) << "restart must be blocked by surviving clients";

  // [5] Survivors release the device; a replacement manager starts on a
  // different host, re-initializes the controller, and serves fresh
  // attachments.
  c1->reset();
  c2->reset();
  tb.engine().run_for(1_ms);
  auto manager2 = tb.wait(driver::Manager::start(tb.service(), 3, tb.device_id(), {}));
  ASSERT_TRUE(manager2.has_value()) << manager2.status().to_string();
  auto c3 = tb.wait(driver::Client::attach(tb.service(), 1, tb.device_id(), {}));
  ASSERT_TRUE(c3.has_value()) << c3.status().to_string();
  quick_io(tb, **c3, 1);
}

// --- hot-standby takeover (docs/MODEL.md §10) -------------------------------------

/// Active-manager HA config: publish a 1 ms lease, reap orphans.
driver::Manager::Config ha_manager() {
  driver::Manager::Config mc;
  mc.lease_duration_ns = 1_ms;
  mc.client_heartbeat_timeout_ns = 4_ms;
  return mc;
}

/// Standby config: same HA knobs, but its own metadata segment id and
/// private segment base — hinted allocation can land both managers' segments
/// on the same host, where the ids must not collide.
driver::Manager::Config ha_standby() {
  driver::Manager::Config mc = ha_manager();
  mc.metadata_segment_id = 0x4d455442;  // "METB"
  mc.private_segment_base = 0x4e000000;
  return mc;
}

/// HA-aware client: retries mailbox calls across the takeover window and
/// heartbeats (re-homing to the successor's segment when the registration
/// moves).
driver::Client::Config ha_client() {
  driver::Client::Config cc;
  cc.mailbox_timeout_ns = 1_ms;  // fail one attempt fast, then retry
  cc.mailbox_retry_limit = 12;
  cc.mailbox_retry_backoff_ns = 100'000;
  cc.heartbeat_interval_ns = 300'000;
  return cc;
}

TEST(Takeover, StandbyTakesOverUnderVerifiedLoad) {
  auto plan = fault::parse_plan("seed=5;host_crash:host=0,at=3ms");
  ASSERT_TRUE(plan.has_value()) << plan.status().to_string();
  fault::Injector::global().configure(std::move(*plan));
  {
    Testbed tb(small_testbed(5));

    auto manager =
        tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), ha_manager()));
    ASSERT_TRUE(manager.has_value()) << manager.status().to_string();

    driver::Client::Config multi = ha_client();
    multi.channels = 2;
    auto c1 = tb.wait(driver::Client::attach(tb.service(), 1, tb.device_id(), multi));
    auto c2 = tb.wait(driver::Client::attach(tb.service(), 2, tb.device_id(), ha_client()));
    ASSERT_TRUE(c1.has_value()) << c1.status().to_string();
    ASSERT_TRUE(c2.has_value()) << c2.status().to_string();

    auto standby =
        tb.wait(driver::Manager::start_standby(tb.service(), 3, tb.device_id(), ha_standby()));
    ASSERT_TRUE(standby.has_value()) << standby.status().to_string();
    EXPECT_TRUE((*standby)->is_standby());
    EXPECT_FALSE((*standby)->is_active());

    fault::Injector::global().arm(tb.engine(), {});
    const sim::Time armed = tb.engine().now();

    // Verified I/O from both clients spanning the whole crash + takeover
    // window. The manager is off the data path, so not one request may
    // error — in-flight or issued mid-outage.
    std::vector<sim::Future<Result<workload::JobResult>>> jobs;
    for (std::size_t i = 0; i < 2; ++i) {
      workload::JobSpec spec;
      spec.pattern = workload::JobSpec::Pattern::randrw;
      spec.ops = 0;
      spec.duration = 8_ms;
      spec.queue_depth = 4;
      spec.verify = true;
      spec.seed = 0x7a + i;
      spec.region_blocks = 32 * 1024;
      spec.region_offset_blocks = i * 64 * 1024;
      driver::Client& cl = i == 0 ? **c1 : **c2;
      jobs.push_back(
          workload::run_job(tb.cluster(), cl, static_cast<sisci::NodeId>(i + 1), spec));
    }

    // Run into the outage (crash at 3 ms, takeover roughly a lease + stagger
    // later) and start a fresh attach while nobody is serving the mailbox
    // yet: its retry loop must carry it through to the successor.
    tb.engine().run_until(armed + 3'300'000);
    auto late_attach = driver::Client::attach(tb.service(), 4, tb.device_id(), ha_client());

    for (auto& job : jobs) {
      auto result = tb.wait(std::move(job), 300_s);
      ASSERT_TRUE(result.has_value()) << result.status().to_string();
      EXPECT_EQ(result->errors, 0u) << "in-flight I/O must not observe the takeover";
      EXPECT_EQ(result->verify_failures, 0u);
    }

    // The standby promoted itself: epoch bumped, old manager fenced out of
    // the registration, survivors re-homed.
    EXPECT_TRUE((*standby)->is_active());
    EXPECT_FALSE((*standby)->is_standby());
    EXPECT_EQ((*standby)->stats().takeovers.value(), 1u);
    EXPECT_EQ((*standby)->epoch(), 2u);
    EXPECT_GE((*standby)->stats().qps_adopted.value(), 3u);  // 2 + 1 channels
    EXPECT_FALSE((*manager)->is_active());

    // The attach that started during the outage completed against the new
    // manager and its queue pair works.
    auto c3 = tb.wait(std::move(late_attach), 60_s);
    ASSERT_TRUE(c3.has_value()) << c3.status().to_string();
    EXPECT_GE((*c3)->stats().mailbox_retries.value(), 1u);
    quick_io(tb, **c3, 4);

    // Survivors still work end to end, including admin-path operations
    // against the successor (delete + re-create through detach).
    quick_io(tb, **c1, 1);
    quick_io(tb, **c2, 2);
    EXPECT_GE((*c1)->stats().manager_failovers.value(), 1u);
    Status st = tb.wait_status((*c2)->detach(), 30_s);
    EXPECT_TRUE(st.is_ok()) << st.to_string();
    EXPECT_FALSE(tb.controller().is_fatal());
  }
  fault::Injector::global().disarm();
}

TEST(Takeover, OrphanReapedExactlyOnceAndSurvivorSpared) {
  // A client dies, then the manager dies before its reaper could collect
  // the orphan. The successor must reap the orphaned queue pair exactly
  // once — after the takeover grace window — while the live, heartbeating
  // survivor is never touched.
  auto plan = fault::parse_plan("seed=9;host_crash:host=1,at=2ms;host_crash:host=0,at=2500us");
  ASSERT_TRUE(plan.has_value()) << plan.status().to_string();
  fault::Injector::global().configure(std::move(*plan));
  {
    Testbed tb(small_testbed(4));
    auto manager =
        tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), ha_manager()));
    ASSERT_TRUE(manager.has_value()) << manager.status().to_string();
    auto doomed = tb.wait(driver::Client::attach(tb.service(), 1, tb.device_id(), ha_client()));
    auto survivor =
        tb.wait(driver::Client::attach(tb.service(), 2, tb.device_id(), ha_client()));
    ASSERT_TRUE(doomed.has_value() && survivor.has_value());
    auto standby =
        tb.wait(driver::Manager::start_standby(tb.service(), 3, tb.device_id(), ha_standby()));
    ASSERT_TRUE(standby.has_value()) << standby.status().to_string();

    fault::Injector::global().arm(tb.engine(), {});
    const sim::Time armed = tb.engine().now();

    // Past the crashes, the takeover, the grace window (2 ms) and the
    // heartbeat timeout (4 ms): the orphan must be gone by now.
    tb.engine().run_until(armed + 14_ms);

    EXPECT_TRUE((*standby)->is_active());
    EXPECT_EQ((*standby)->stats().takeovers.value(), 1u);
    EXPECT_EQ((*manager)->stats().qps_reaped.value(), 0u)
        << "the old manager died before its reaper ran";
    EXPECT_EQ((*standby)->stats().qps_reaped.value(), 1u)
        << "the orphan is reaped exactly once, the survivor never";
    // Admin queue + the survivor's pair is all that remains.
    EXPECT_EQ((*standby)->active_queue_pairs(), 2u);

    // The survivor's pair kept working through all of it.
    quick_io(tb, **survivor, 2);
  }
  fault::Injector::global().disarm();
}

TEST(Takeover, StandbyRequiresLeasePublishingManager) {
  // Without lease_duration_ns the active manager never writes the lease
  // slot; a standby has nothing to watch and must fail cleanly rather than
  // poll a forever-zero lease.
  Testbed tb(small_testbed(3));
  auto manager = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), {}));
  ASSERT_TRUE(manager.has_value()) << manager.status().to_string();
  auto standby =
      tb.wait(driver::Manager::start_standby(tb.service(), 2, tb.device_id(), ha_standby()));
  ASSERT_FALSE(standby.has_value());
  EXPECT_EQ(standby.error_code(), Errc::unsupported) << standby.status().to_string();
}

TEST(Takeover, StandbyConfigRequiresLeaseDuration) {
  Testbed tb(small_testbed(3));
  auto manager =
      tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), ha_manager()));
  ASSERT_TRUE(manager.has_value()) << manager.status().to_string();
  driver::Manager::Config sc = ha_standby();
  sc.lease_duration_ns = 0;  // a standby that would never renew its own lease
  auto standby = tb.wait(driver::Manager::start_standby(tb.service(), 2, tb.device_id(), sc));
  EXPECT_FALSE(standby.has_value());
}

}  // namespace
}  // namespace nvmeshare
