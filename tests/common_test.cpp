// Unit tests for common utilities: status/result, RNG, stats, byte helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/units.hpp"

namespace nvmeshare {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::ok);
  EXPECT_EQ(st.to_string(), "ok");
}

TEST(Status, CarriesCodeAndMessage) {
  Status st(Errc::not_found, "missing thing");
  EXPECT_FALSE(st.is_ok());
  EXPECT_FALSE(static_cast<bool>(st));
  EXPECT_EQ(st.to_string(), "not_found: missing thing");
}

TEST(Result, HoldsValue) {
  Result<int> r = 5;
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().is_ok());
  EXPECT_EQ(r.value_or(9), 5);
}

TEST(Result, HoldsError) {
  Result<int> r(Errc::timed_out, "too slow");
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(r.error_code(), Errc::timed_out);
  EXPECT_EQ(r.value_or(9), 9);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(3);
  ASSERT_TRUE(r.has_value());
  auto owned = std::move(r).value();
  EXPECT_EQ(*owned, 3);
}

TEST(Units, LiteralsAndHelpers) {
  EXPECT_EQ(1_us, 1000);
  EXPECT_EQ(2_ms, 2'000'000);
  EXPECT_EQ(1_s, 1'000'000'000);
  EXPECT_EQ(align_up(4097, 4096), 8192u);
  EXPECT_EQ(align_down(4097, 4096), 4096u);
  EXPECT_EQ(div_ceil(9, 4), 3u);
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(4097));
  EXPECT_FALSE(is_pow2(0));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  bool differs_from_c = false;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) differs_from_c = true;
  }
  EXPECT_TRUE(differs_from_c);
}

TEST(Rng, UniformBoundIsRespected) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, Uniform01InRange) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, LognormalMedianRoughlyCorrect) {
  Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 20'000; ++i) samples.push_back(rng.lognormal(1000.0, 0.1));
  std::sort(samples.begin(), samples.end());
  const double median = samples[samples.size() / 2];
  EXPECT_NEAR(median, 1000.0, 30.0);
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng a(5);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(LatencyRecorder, PercentilesOnKnownData) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.add(i * 1000);
  EXPECT_EQ(rec.min(), 1000);
  EXPECT_EQ(rec.max(), 100'000);
  EXPECT_NEAR(rec.percentile(50), 50'500, 1000);
  EXPECT_NEAR(rec.percentile(99), 99'010, 1000);
  EXPECT_NEAR(rec.mean(), 50'500, 1);
}

TEST(LatencyRecorder, SingleSample) {
  LatencyRecorder rec;
  rec.add(777);
  EXPECT_EQ(rec.min(), 777);
  EXPECT_EQ(rec.max(), 777);
  EXPECT_DOUBLE_EQ(rec.percentile(50), 777.0);
  EXPECT_DOUBLE_EQ(rec.stddev(), 0.0);
}

TEST(LatencyRecorder, PercentileIsMonotonic) {
  LatencyRecorder rec;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) rec.add(static_cast<sim::Duration>(rng.uniform(1'000'000)));
  double prev = 0;
  for (double p = 0; p <= 100; p += 0.5) {
    const double v = rec.percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(BoxSummary, FromRecorder) {
  LatencyRecorder rec;
  for (int i = 1; i <= 1000; ++i) rec.add(i * 10);
  auto box = BoxSummary::from("test", rec);
  EXPECT_EQ(box.count, 1000u);
  EXPECT_DOUBLE_EQ(box.min_us, 0.01);
  EXPECT_DOUBLE_EQ(box.max_us, 10.0);
  EXPECT_GT(box.p75_us, box.p25_us);
  EXPECT_GE(box.p99_us, box.p75_us);
  const std::string row = format_box_row(box);
  EXPECT_NE(row.find("test"), std::string::npos);
}

TEST(AsciiBoxplot, RendersOneLinePerBox) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.add(i * 100);
  std::vector<BoxSummary> boxes{BoxSummary::from("a", rec), BoxSummary::from("b", rec)};
  const std::string out = render_ascii_boxplot(boxes);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);  // 2 boxes + axis
  EXPECT_NE(out.find('#'), std::string::npos);             // median marker
}

TEST(Bytes, PatternRoundTrip) {
  Bytes buf = make_pattern(4096, 0x1234);
  EXPECT_TRUE(check_pattern(buf, 0x1234));
  EXPECT_FALSE(check_pattern(buf, 0x1235));
  buf[100] ^= std::byte{1};
  EXPECT_FALSE(check_pattern(buf, 0x1234));
}

TEST(Bytes, PatternsDifferAcrossSeeds) {
  Bytes a = make_pattern(64, 1);
  Bytes b = make_pattern(64, 2);
  EXPECT_NE(a, b);
}

TEST(Bytes, PodRoundTrip) {
  Bytes buf(16);
  store_pod(buf, std::uint64_t{0xdeadbeefcafef00d}, 4);
  EXPECT_EQ(load_pod<std::uint64_t>(buf, 4), 0xdeadbeefcafef00dULL);
}

TEST(Bytes, HexdumpTruncates) {
  Bytes buf(1024, std::byte{0xAB});
  const std::string dump = hexdump(buf, 32);
  EXPECT_NE(dump.find("ab ab"), std::string::npos);
  EXPECT_NE(dump.find("..."), std::string::npos);
}

}  // namespace
}  // namespace nvmeshare
