// Unit tests for the PCIe fabric: topology routing, address resolution, NTB
// translation, transaction timing and ordering.
#include <gtest/gtest.h>

#include "pcie/fabric.hpp"
#include "sim/task.hpp"

namespace nvmeshare::pcie {
namespace {

// A trivial endpoint with one 4 KiB BAR of plain registers plus a write log.
class ScratchDevice final : public Endpoint {
 public:
  [[nodiscard]] std::string_view name() const override { return "scratch"; }
  [[nodiscard]] int bar_count() const override { return 1; }
  [[nodiscard]] std::uint64_t bar_size(int bar) const override {
    return bar == 0 ? 4096 : 0;
  }
  Result<Bytes> bar_read(int, std::uint64_t offset, std::size_t len) override {
    if (offset + len > 4096) return Status(Errc::out_of_range, "oob");
    return Bytes(regs_.begin() + static_cast<long>(offset),
                 regs_.begin() + static_cast<long>(offset + len));
  }
  Status bar_write(int, std::uint64_t offset, ConstByteSpan data) override {
    if (offset + data.size() > 4096) return Status(Errc::out_of_range, "oob");
    std::copy(data.begin(), data.end(), regs_.begin() + static_cast<long>(offset));
    ++writes_;
    return Status::ok();
  }
  [[nodiscard]] int writes() const noexcept { return writes_; }

 private:
  Bytes regs_ = Bytes(4096, std::byte{0});
  int writes_ = 0;
};

struct TwoHostFixture {
  sim::Engine engine;
  Fabric fabric{engine};
  HostId h0, h1;
  NtbId ntb0, ntb1;
  ChipId cs;

  TwoHostFixture() {
    h0 = fabric.add_host("h0", 256 * MiB);
    h1 = fabric.add_host("h1", 256 * MiB);
    cs = fabric.add_cluster_switch("cs");
    ntb0 = *fabric.add_ntb(h0, 16, 1 * MiB);
    ntb1 = *fabric.add_ntb(h1, 16, 1 * MiB);
    EXPECT_TRUE(fabric.link_chips(fabric.ntb_chip(ntb0), cs).is_ok());
    EXPECT_TRUE(fabric.link_chips(fabric.ntb_chip(ntb1), cs).is_ok());
  }
};

TEST(Topology, PathCostSumsChipLatencies) {
  Topology topo;
  ChipId a = topo.add_chip("a", ChipKind::root_complex, 0, 80);
  ChipId b = topo.add_chip("b", ChipKind::switch_chip, 0, 120);
  ChipId c = topo.add_chip("c", ChipKind::switch_chip, 0, 120);
  ASSERT_TRUE(topo.link(a, b).is_ok());
  ASSERT_TRUE(topo.link(b, c).is_ok());
  auto pc = topo.path_cost(a, c);
  EXPECT_TRUE(pc.reachable);
  EXPECT_EQ(pc.hops, 3);
  EXPECT_EQ(pc.cost_ns, 80 + 120 + 120);
}

TEST(Topology, UnreachableChips) {
  Topology topo;
  ChipId a = topo.add_chip("a", ChipKind::root_complex, 0, 80);
  ChipId b = topo.add_chip("b", ChipKind::root_complex, 1, 80);
  auto pc = topo.path_cost(a, b);
  EXPECT_FALSE(pc.reachable);
}

TEST(Topology, ShortestPathChosen) {
  Topology topo;
  // a - b - c and a - d - e - c: BFS must pick the 3-chip path.
  ChipId a = topo.add_chip("a", ChipKind::root_complex, 0, 10);
  ChipId b = topo.add_chip("b", ChipKind::switch_chip, 0, 10);
  ChipId c = topo.add_chip("c", ChipKind::switch_chip, 0, 10);
  ChipId d = topo.add_chip("d", ChipKind::switch_chip, 0, 10);
  ChipId e = topo.add_chip("e", ChipKind::switch_chip, 0, 10);
  ASSERT_TRUE(topo.link(a, b).is_ok());
  ASSERT_TRUE(topo.link(b, c).is_ok());
  ASSERT_TRUE(topo.link(a, d).is_ok());
  ASSERT_TRUE(topo.link(d, e).is_ok());
  ASSERT_TRUE(topo.link(e, c).is_ok());
  EXPECT_EQ(topo.path_cost(a, c).hops, 3);
}

TEST(Topology, DuplicateLinkRejected) {
  Topology topo;
  ChipId a = topo.add_chip("a", ChipKind::root_complex, 0, 10);
  ChipId b = topo.add_chip("b", ChipKind::switch_chip, 0, 10);
  ASSERT_TRUE(topo.link(a, b).is_ok());
  EXPECT_EQ(topo.link(a, b).code(), Errc::already_exists);
  EXPECT_EQ(topo.link(a, a).code(), Errc::invalid_argument);
}

TEST(LatencyModel, PostedVsNonPosted) {
  LatencyModel m;
  // A read must cost more than a posted write of the same size: it pays the
  // path twice.
  EXPECT_GT(m.read_ns(300, 0, 4096), m.posted_write_ns(300, 0, 4096));
}

TEST(LatencyModel, TlpSegmentation) {
  LatencyModel m;
  EXPECT_EQ(m.tlp_count(0), 1u);
  EXPECT_EQ(m.tlp_count(256), 1u);
  EXPECT_EQ(m.tlp_count(257), 2u);
  EXPECT_EQ(m.tlp_count(4096), 16u);
}

TEST(Fabric, LocalDramPokePeek) {
  sim::Engine engine;
  Fabric fabric(engine);
  HostId h = fabric.add_host("h", 64 * MiB);
  Bytes data = make_pattern(512, 5);
  ASSERT_TRUE(fabric.poke(h, 0x1000, data).is_ok());
  Bytes out(512);
  ASSERT_TRUE(fabric.peek(h, 0x1000, out).is_ok());
  EXPECT_EQ(data, out);
}

TEST(Fabric, UnmappedAddressRejected) {
  sim::Engine engine;
  Fabric fabric(engine);
  HostId h = fabric.add_host("h", 64 * MiB);
  Bytes buf(16);
  EXPECT_EQ(fabric.peek(h, 0x7000'0000'0000, buf).code(), Errc::unmapped_address);
}

TEST(Fabric, BarReadWriteThroughFabric) {
  sim::Engine engine;
  Fabric fabric(engine);
  HostId h = fabric.add_host("h", 64 * MiB);
  ScratchDevice dev;
  auto ep = fabric.attach_endpoint(dev, h, fabric.host_rc(h));
  ASSERT_TRUE(ep.has_value());
  auto bar = fabric.bar_address(*ep, 0);
  ASSERT_TRUE(bar.has_value());

  Bytes data = make_pattern(64, 9);
  auto arrival = fabric.post_write(fabric.cpu(h), *bar + 128, data);
  ASSERT_TRUE(arrival.has_value());
  EXPECT_GT(*arrival, engine.now());
  EXPECT_EQ(dev.writes(), 0);  // posted: not applied yet
  engine.run();
  EXPECT_EQ(dev.writes(), 1);

  Bytes out(64);
  ASSERT_TRUE(fabric.peek(h, *bar + 128, out).is_ok());
  EXPECT_EQ(out, data);
}

TEST(Fabric, NtbWindowTranslatesToRemoteDram) {
  TwoHostFixture f;
  ASSERT_TRUE(f.fabric.ntb_program(f.ntb0, 0, f.h1, 2 * MiB).is_ok());
  auto window = f.fabric.ntb_window_address(f.ntb0, 0);
  ASSERT_TRUE(window.has_value());

  auto resolved = f.fabric.resolve(f.h0, *window + 4096, 64);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->host, f.h1);
  EXPECT_EQ(resolved->addr, 2 * MiB + 4096);
  EXPECT_EQ(resolved->ntb_crossings, 1);

  // Bytes really land in h1's DRAM.
  Bytes data = make_pattern(64, 11);
  ASSERT_TRUE(f.fabric.poke(f.h0, *window + 4096, data).is_ok());
  Bytes out(64);
  ASSERT_TRUE(f.fabric.host_dram(f.h1).read(2 * MiB + 4096, out).is_ok());
  EXPECT_EQ(out, data);
}

TEST(Fabric, UnprogrammedLutEntryIsUnmapped) {
  TwoHostFixture f;
  auto window = f.fabric.ntb_window_address(f.ntb0, 3);
  ASSERT_TRUE(window.has_value());
  Bytes buf(8);
  EXPECT_EQ(f.fabric.peek(f.h0, *window, buf).code(), Errc::unmapped_address);
}

TEST(Fabric, AccessAcrossWindowBoundaryRejected) {
  TwoHostFixture f;
  ASSERT_TRUE(f.fabric.ntb_program(f.ntb0, 0, f.h1, 0).is_ok());
  ASSERT_TRUE(f.fabric.ntb_program(f.ntb0, 1, f.h1, 1 * MiB).is_ok());
  auto window = f.fabric.ntb_window_address(f.ntb0, 0);
  Bytes buf(4096);
  EXPECT_EQ(f.fabric.peek(f.h0, *window + 1 * MiB - 100, buf).code(), Errc::out_of_range);
}

TEST(Fabric, RemoteReadCostsMoreThanLocal) {
  TwoHostFixture f;
  ASSERT_TRUE(f.fabric.ntb_program(f.ntb0, 0, f.h1, 0).is_ok());
  auto window = f.fabric.ntb_window_address(f.ntb0, 0);

  sim::Time local_done = 0, remote_done = 0;
  [](Fabric& fab, HostId h, std::uint64_t addr, sim::Time& out) -> sim::Task {
    (void)co_await fab.read(fab.cpu(h), addr, 64);
    out = fab.engine().now();
  }(f.fabric, f.h0, 0x2000, local_done);
  f.engine.run();
  const sim::Time t0 = f.engine.now();
  [](Fabric& fab, HostId h, std::uint64_t addr, sim::Time& out) -> sim::Task {
    (void)co_await fab.read(fab.cpu(h), addr, 64);
    out = fab.engine().now();
  }(f.fabric, f.h0, *window, remote_done);
  f.engine.run();
  EXPECT_GT(remote_done - t0, local_done);
  // The remote path crosses NTB0 -> cluster switch -> NTB1 -> RC1: the
  // round trip must include at least 2x those chip costs.
  const auto& m = f.fabric.latency_model();
  EXPECT_GE((remote_done - t0) - local_done,
            2 * (2 * m.ntb_adapter_ns + m.cluster_switch_ns));
}

TEST(Fabric, PostedWritesApplyInOrder) {
  TwoHostFixture f;
  ASSERT_TRUE(f.fabric.ntb_program(f.ntb0, 0, f.h1, 0).is_ok());
  auto window = f.fabric.ntb_window_address(f.ntb0, 0);
  // Two writes to the same remote location issued back to back: the second
  // must win.
  Bytes first(8, std::byte{0x11});
  Bytes second(8, std::byte{0x22});
  ASSERT_TRUE(f.fabric.post_write(f.fabric.cpu(f.h0), *window, first).has_value());
  ASSERT_TRUE(f.fabric.post_write(f.fabric.cpu(f.h0), *window, second).has_value());
  f.engine.run();
  Bytes out(8);
  ASSERT_TRUE(f.fabric.host_dram(f.h1).read(0, out).is_ok());
  EXPECT_EQ(out, second);
}

TEST(Fabric, NotBeforeOrdersDataBeforeCompletion) {
  TwoHostFixture f;
  // A small write issued after a big one, with not_before chaining, must
  // not arrive earlier.
  Bytes big(64 * KiB, std::byte{0xAA});
  Bytes small(8, std::byte{0xBB});
  auto t_big = f.fabric.post_write(f.fabric.cpu(f.h0), 0x10000, big);
  ASSERT_TRUE(t_big.has_value());
  auto t_small = f.fabric.post_write(f.fabric.cpu(f.h0), 0x90000, small, *t_big);
  ASSERT_TRUE(t_small.has_value());
  EXPECT_GE(*t_small, *t_big);
}

TEST(Fabric, ScatterGatherRoundTrip) {
  TwoHostFixture f;
  std::vector<SgEntry> sg{{0x10000, 4096}, {0x30000, 4096}, {0x50000, 4096}};
  Bytes data = make_pattern(3 * 4096, 21);
  auto arrival = f.fabric.write_sg(f.fabric.cpu(f.h0), sg, data);
  ASSERT_TRUE(arrival.has_value());
  f.engine.run();

  bool done = false;
  [](Fabric& fab, HostId h, std::vector<SgEntry> list, Bytes expect, bool& ok) -> sim::Task {
    auto got = co_await fab.read_sg(fab.cpu(h), list);
    ok = got.has_value() && *got == expect;
  }(f.fabric, f.h0, sg, data, done);
  f.engine.run();
  EXPECT_TRUE(done);
}

TEST(Fabric, LutEntryExhaustion) {
  TwoHostFixture f;
  for (std::uint32_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(f.fabric.ntb_program(f.ntb0, i, f.h1, 0).is_ok());
  }
  EXPECT_EQ(f.fabric.ntb_alloc_entry(f.ntb0).error_code(), Errc::resource_exhausted);
  EXPECT_EQ(f.fabric.ntb_alloc_run(f.ntb0, 2).error_code(), Errc::resource_exhausted);
  ASSERT_TRUE(f.fabric.ntb_clear(f.ntb0, 7).is_ok());
  auto e = f.fabric.ntb_alloc_entry(f.ntb0);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 7u);
}

TEST(Fabric, AllocRunFindsConsecutiveEntries) {
  TwoHostFixture f;
  ASSERT_TRUE(f.fabric.ntb_program(f.ntb0, 1, f.h1, 0).is_ok());
  ASSERT_TRUE(f.fabric.ntb_program(f.ntb0, 4, f.h1, 0).is_ok());
  auto run = f.fabric.ntb_alloc_run(f.ntb0, 3);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(*run, 5u);  // first run of 3 free entries after index 4
}

TEST(Fabric, ChainedNtbTranslationAcrossThreeHosts) {
  // Host A's window points into host B's NTB aperture, which forwards to
  // host C: resolution must follow the chain (multi-hop clusters) and
  // count both crossings.
  sim::Engine engine;
  Fabric fabric(engine);
  HostId a = fabric.add_host("a", 64 * MiB);
  HostId b = fabric.add_host("b", 64 * MiB);
  HostId c = fabric.add_host("c", 64 * MiB);
  ChipId cs1 = fabric.add_cluster_switch("cs1");
  NtbId ntb_a = *fabric.add_ntb(a, 8, 1 * MiB);
  NtbId ntb_b = *fabric.add_ntb(b, 8, 1 * MiB);
  NtbId ntb_c = *fabric.add_ntb(c, 8, 1 * MiB);
  ASSERT_TRUE(fabric.link_chips(fabric.ntb_chip(ntb_a), cs1).is_ok());
  ASSERT_TRUE(fabric.link_chips(fabric.ntb_chip(ntb_b), cs1).is_ok());
  ASSERT_TRUE(fabric.link_chips(fabric.ntb_chip(ntb_c), cs1).is_ok());

  // B window 0 -> C DRAM @ 4 MiB; A window 0 -> B's window 0 aperture.
  ASSERT_TRUE(fabric.ntb_program(ntb_b, 0, c, 4 * MiB).is_ok());
  const std::uint64_t b_window = *fabric.ntb_window_address(ntb_b, 0);
  ASSERT_TRUE(fabric.ntb_program(ntb_a, 0, b, b_window).is_ok());
  const std::uint64_t a_window = *fabric.ntb_window_address(ntb_a, 0);

  auto resolved = fabric.resolve(a, a_window + 512, 64);
  ASSERT_TRUE(resolved.has_value()) << resolved.status().to_string();
  EXPECT_EQ(resolved->host, c);
  EXPECT_EQ(resolved->addr, 4 * MiB + 512);
  EXPECT_EQ(resolved->ntb_crossings, 2);

  Bytes data = make_pattern(64, 3);
  ASSERT_TRUE(fabric.poke(a, a_window + 512, data).is_ok());
  Bytes out(64);
  ASSERT_TRUE(fabric.host_dram(c).read(4 * MiB + 512, out).is_ok());
  EXPECT_EQ(out, data);
}

TEST(Fabric, NtbForwardingLoopDetected) {
  sim::Engine engine;
  Fabric fabric(engine);
  HostId a = fabric.add_host("a", 64 * MiB);
  HostId b = fabric.add_host("b", 64 * MiB);
  ChipId cs = fabric.add_cluster_switch("cs");
  NtbId ntb_a = *fabric.add_ntb(a, 8, 1 * MiB);
  NtbId ntb_b = *fabric.add_ntb(b, 8, 1 * MiB);
  ASSERT_TRUE(fabric.link_chips(fabric.ntb_chip(ntb_a), cs).is_ok());
  ASSERT_TRUE(fabric.link_chips(fabric.ntb_chip(ntb_b), cs).is_ok());

  // A->B's aperture and B->A's aperture: an infinite forwarding loop.
  const std::uint64_t a_window = *fabric.ntb_window_address(ntb_a, 0);
  const std::uint64_t b_window = *fabric.ntb_window_address(ntb_b, 0);
  ASSERT_TRUE(fabric.ntb_program(ntb_a, 0, b, b_window).is_ok());
  ASSERT_TRUE(fabric.ntb_program(ntb_b, 0, a, a_window).is_ok());
  auto resolved = fabric.resolve(a, a_window, 8);
  EXPECT_FALSE(resolved.has_value());
  EXPECT_EQ(resolved.error_code(), Errc::protocol_error);
}

TEST(Fabric, LinkFailureMakesRemoteUnreachableAndRecovers) {
  TwoHostFixture f;
  ASSERT_TRUE(f.fabric.ntb_program(f.ntb0, 0, f.h1, 0).is_ok());
  auto window = f.fabric.ntb_window_address(f.ntb0, 0);

  // Healthy: remote read works.
  bool ok_before = false;
  [](Fabric& fab, std::uint64_t addr, bool& out) -> sim::Task {
    auto r = co_await fab.read(fab.cpu(0), addr, 64);
    out = r.has_value();
  }(f.fabric, *window, ok_before);
  f.engine.run();
  EXPECT_TRUE(ok_before);

  // Pull the cable between NTB0 and the cluster switch.
  ASSERT_TRUE(f.fabric.topology().set_link_state(f.fabric.ntb_chip(f.ntb0), f.cs, false)
                  .is_ok());
  Status down_status;
  [](Fabric& fab, std::uint64_t addr, Status& out) -> sim::Task {
    auto r = co_await fab.read(fab.cpu(0), addr, 64);
    out = r.status();
  }(f.fabric, *window, down_status);
  f.engine.run();
  EXPECT_EQ(down_status.code(), Errc::unavailable);
  // Posted writes are dropped as unsupported requests, not applied.
  const auto ur_before = f.fabric.stats().unsupported_requests;
  EXPECT_FALSE(f.fabric.post_write(f.fabric.cpu(f.h0), *window, Bytes(8)).has_value());
  EXPECT_EQ(f.fabric.stats().unsupported_requests, ur_before);  // resolve ok, path fails

  // Local traffic is unaffected.
  Bytes local(16);
  EXPECT_TRUE(f.fabric.peek(f.h0, 0x1000, local).is_ok());

  // Plug it back in: reads work again.
  ASSERT_TRUE(f.fabric.topology().set_link_state(f.fabric.ntb_chip(f.ntb0), f.cs, true)
                  .is_ok());
  bool ok_after = false;
  [](Fabric& fab, std::uint64_t addr, bool& out) -> sim::Task {
    auto r = co_await fab.read(fab.cpu(0), addr, 64);
    out = r.has_value();
  }(f.fabric, *window, ok_after);
  f.engine.run();
  EXPECT_TRUE(ok_after);
}

TEST(Fabric, StatsAreCounted) {
  TwoHostFixture f;
  const auto before = f.fabric.stats();
  (void)f.fabric.post_write(f.fabric.cpu(f.h0), 0x1000, Bytes(128));
  f.engine.run();
  EXPECT_EQ(f.fabric.stats().posted_writes, before.posted_writes + 1);
  EXPECT_EQ(f.fabric.stats().bytes_written, before.bytes_written + 128);
}

}  // namespace
}  // namespace nvmeshare::pcie
