// Golden pin for the NTB substrate: the fabric-abstraction refactor must not
// change a single transaction on the PCIe/NTB path. The constants below were
// captured from the pre-refactor seed (PR 8 tree) running this exact
// scenario; the refactored NTB substrate has to reproduce them bit-for-bit —
// final simulated clock, every fabric counter, and the job's latency sums.
//
// If this test fails after an intentional change to the NTB latency model or
// driver instruction stream, re-capture by running with
// NVS_PIN_CAPTURE=1 and paste the printed block.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "test_util.hpp"

namespace nvmeshare {
namespace {

using namespace testutil;

struct PinObservation {
  sim::Time end_time = 0;
  std::uint64_t posted_writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t ntb_translations = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
  sim::Duration read_elapsed = 0;
  sim::Duration write_elapsed = 0;
};

/// The pinned scenario: 2 hosts, manager on the device host, client remote,
/// 64 random reads then 64 random writes (4 KiB, QD1), fixed seeds.
PinObservation run_pinned_scenario() {
  PinObservation obs;
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  EXPECT_TRUE(stack.has_value()) << stack.status().to_string();
  if (!stack) return obs;

  workload::JobSpec spec;
  spec.block_bytes = 4096;
  spec.queue_depth = 1;
  spec.ops = 64;
  spec.seed = 2024;

  spec.pattern = workload::JobSpec::Pattern::randread;
  auto rd = workload::run_job_blocking(tb.cluster(), *stack->client, 1, spec);
  EXPECT_TRUE(rd.has_value()) << rd.status().to_string();
  if (rd) {
    EXPECT_EQ(rd->errors, 0u);
    obs.read_ops = rd->ops_completed;
    obs.read_elapsed = rd->elapsed;
  }

  spec.pattern = workload::JobSpec::Pattern::randwrite;
  auto wr = workload::run_job_blocking(tb.cluster(), *stack->client, 1, spec);
  EXPECT_TRUE(wr.has_value()) << wr.status().to_string();
  if (wr) {
    EXPECT_EQ(wr->errors, 0u);
    obs.write_ops = wr->ops_completed;
    obs.write_elapsed = wr->elapsed;
  }

  obs.end_time = tb.engine().now();
  obs.posted_writes = tb.fabric().stats().posted_writes.value();
  obs.reads = tb.fabric().stats().reads.value();
  obs.bytes_written = tb.fabric().stats().bytes_written.value();
  obs.bytes_read = tb.fabric().stats().bytes_read.value();
  obs.ntb_translations = tb.fabric().stats().ntb_translations.value();
  return obs;
}

TEST(FabricPin, NtbPathMatchesPreRefactorSeed) {
  const PinObservation obs = run_pinned_scenario();

  if (std::getenv("NVS_PIN_CAPTURE") != nullptr) {
    std::printf("  constexpr sim::Time kEndTime = %" PRIu64 ";\n"
                "  constexpr std::uint64_t kPostedWrites = %" PRIu64 ";\n"
                "  constexpr std::uint64_t kReads = %" PRIu64 ";\n"
                "  constexpr std::uint64_t kBytesWritten = %" PRIu64 ";\n"
                "  constexpr std::uint64_t kBytesRead = %" PRIu64 ";\n"
                "  constexpr std::uint64_t kNtbTranslations = %" PRIu64 ";\n"
                "  constexpr sim::Duration kReadElapsed = %" PRIu64 ";\n"
                "  constexpr sim::Duration kWriteElapsed = %" PRIu64 ";\n",
                obs.end_time, obs.posted_writes, obs.reads, obs.bytes_written,
                obs.bytes_read, obs.ntb_translations,
                static_cast<std::uint64_t>(obs.read_elapsed),
                static_cast<std::uint64_t>(obs.write_elapsed));
    return;
  }

  // Captured from the pre-refactor seed build (see file comment).
  constexpr sim::Time kEndTime = 22000000;
  constexpr std::uint64_t kPostedWrites = 605;
  constexpr std::uint64_t kReads = 221;
  constexpr std::uint64_t kBytesWritten = 282200;
  constexpr std::uint64_t kBytesRead = 270928;
  constexpr std::uint64_t kNtbTranslations = 647;
  constexpr sim::Duration kReadElapsed = 972660;
  constexpr sim::Duration kWriteElapsed = 1094608;

  EXPECT_EQ(obs.end_time, kEndTime);
  EXPECT_EQ(obs.posted_writes, kPostedWrites);
  EXPECT_EQ(obs.reads, kReads);
  EXPECT_EQ(obs.bytes_written, kBytesWritten);
  EXPECT_EQ(obs.bytes_read, kBytesRead);
  EXPECT_EQ(obs.ntb_translations, kNtbTranslations);
  EXPECT_EQ(obs.read_ops, 64u);
  EXPECT_EQ(obs.write_ops, 64u);
  EXPECT_EQ(obs.read_elapsed, kReadElapsed);
  EXPECT_EQ(obs.write_elapsed, kWriteElapsed);
}

}  // namespace
}  // namespace nvmeshare
