// Deterministic fault injection & recovery (docs/faults.md).
//
// Every FaultKind gets at least one test that (a) triggers the fault from a
// parsed plan, (b) observes the matching detection path (deadline, CSTS
// watchdog, heartbeat reaper, ...), and (c) proves the stack recovered by
// passing verified I/O afterwards. Plans are seeded, so each test is exactly
// reproducible.
#include <gtest/gtest.h>

#include <string_view>

#include "fault/fault.hpp"
#include "integrity/integrity.hpp"
#include "nvmeof/initiator.hpp"
#include "nvmeof/target.hpp"
#include "pcie/fabric.hpp"
#include "test_util.hpp"

namespace nvmeshare {
namespace {

using namespace testutil;

// RAII around the process-global injector: configure() must run BEFORE the
// scenario is built (drivers register crash handlers at construction only
// when fault::enabled()), arm() AFTER (timed faults are relative to arm
// time), and disarm() must run even when an ASSERT bails out of the test.
class Chaos {
 public:
  explicit Chaos(std::string_view plan_text) {
    auto plan = fault::parse_plan(plan_text);
    EXPECT_TRUE(plan.has_value()) << plan.status().to_string();
    if (plan) fault::Injector::global().configure(std::move(*plan));
  }
  ~Chaos() { fault::Injector::global().disarm(); }
  Chaos(const Chaos&) = delete;
  Chaos& operator=(const Chaos&) = delete;

  void arm(Testbed& tb) {
    pcie::Fabric* fab = &tb.fabric();
    fault::Injector::global().arm(
        tb.engine(), {.set_ntb_link = [fab](std::uint32_t host, bool up) {
          (void)fab->set_ntb_link(host, up);
        }});
  }

  // The injector is process-global, so its counters accumulate across tests
  // in one binary; report deltas against the value at configure() time.
  [[nodiscard]] std::uint64_t posted_drops() const {
    return fault::Injector::global().stats().posted_drops.value() - base_.posted_drops;
  }
  [[nodiscard]] std::uint64_t posted_delays() const {
    return fault::Injector::global().stats().posted_delays.value() - base_.posted_delays;
  }
  [[nodiscard]] std::uint64_t link_downs() const {
    return fault::Injector::global().stats().link_downs.value() - base_.link_downs;
  }
  [[nodiscard]] std::uint64_t link_ups() const {
    return fault::Injector::global().stats().link_ups.value() - base_.link_ups;
  }
  [[nodiscard]] std::uint64_t host_crashes() const {
    return fault::Injector::global().stats().host_crashes.value() - base_.host_crashes;
  }
  [[nodiscard]] std::uint64_t ctrl_errors() const {
    return fault::Injector::global().stats().ctrl_errors.value() - base_.ctrl_errors;
  }
  [[nodiscard]] std::uint64_t capsule_drops() const {
    return fault::Injector::global().stats().capsule_drops.value() - base_.capsule_drops;
  }
  [[nodiscard]] std::uint64_t bit_flips() const {
    return fault::Injector::global().stats().bit_flips.value() - base_.bit_flips;
  }
  [[nodiscard]] std::uint64_t torn_writes() const {
    return fault::Injector::global().stats().torn_writes.value() - base_.torn_writes;
  }
  [[nodiscard]] std::uint64_t stale_reads() const {
    return fault::Injector::global().stats().stale_reads.value() - base_.stale_reads;
  }

 private:
  struct Baseline {
    std::uint64_t posted_drops = 0;
    std::uint64_t posted_delays = 0;
    std::uint64_t link_downs = 0;
    std::uint64_t link_ups = 0;
    std::uint64_t host_crashes = 0;
    std::uint64_t ctrl_errors = 0;
    std::uint64_t capsule_drops = 0;
    std::uint64_t bit_flips = 0;
    std::uint64_t torn_writes = 0;
    std::uint64_t stale_reads = 0;
  };
  Baseline base_ = [] {
    const auto& s = fault::Injector::global().stats();
    return Baseline{s.posted_drops.value(), s.posted_delays.value(),
                    s.link_downs.value(),  s.link_ups.value(),
                    s.host_crashes.value(), s.ctrl_errors.value(),
                    s.capsule_drops.value(), s.bit_flips.value(),
                    s.torn_writes.value(), s.stale_reads.value()};
  }();
};

/// Client config with the recovery machinery switched on (it is off by
/// default so fault-free runs keep the exact seed instruction stream).
driver::Client::Config recovering_client() {
  driver::Client::Config cc;
  cc.cmd_timeout_ns = 500'000;  // 500 us per-command deadline
  cc.cmd_retry_limit = 3;
  cc.retry_backoff_ns = 50'000;
  return cc;
}

// --- plan DSL ---------------------------------------------------------------------

TEST(FaultPlan, ParsesTheDocumentedGrammar) {
  auto plan = fault::parse_plan(
      "seed=7;drop_posted_write:src=1,class=bar,nth=3;"
      "ntb_link_down:host=1,at=2ms,for=500us;"
      "ctrl_error:qid=2,cid=17,nth=1,fatal=1;"
      "delay_posted_write:dst=0,prob=0.5,extra=10us,count=0;"
      "host_crash:host=2,at=1ms;drop_capsule:nth=4,count=2");
  ASSERT_TRUE(plan.has_value()) << plan.status().to_string();
  EXPECT_EQ(plan->seed, 7u);
  ASSERT_EQ(plan->faults.size(), 6u);

  const auto& drop = plan->faults[0];
  EXPECT_EQ(drop.kind, fault::FaultKind::drop_posted_write);
  EXPECT_EQ(drop.src_host, 1u);
  EXPECT_EQ(drop.write_class, fault::WriteClass::bar);
  EXPECT_EQ(drop.nth, 3u);

  const auto& link = plan->faults[1];
  EXPECT_EQ(link.kind, fault::FaultKind::ntb_link_down);
  EXPECT_EQ(link.at, 2'000'000);
  EXPECT_EQ(link.duration, 500'000);

  const auto& ctrl = plan->faults[2];
  EXPECT_EQ(ctrl.qid, 2u);
  EXPECT_EQ(ctrl.cid, 17u);
  EXPECT_TRUE(ctrl.fatal);

  const auto& delay = plan->faults[3];
  EXPECT_EQ(delay.dst_host, 0u);
  EXPECT_DOUBLE_EQ(delay.probability, 0.5);
  EXPECT_EQ(delay.extra_ns, 10'000);
  EXPECT_EQ(delay.count, 0u);  // unlimited
}

TEST(FaultPlan, RejectsUnknownKindsAndKeys) {
  EXPECT_FALSE(fault::parse_plan("meteor_strike:at=1ms").has_value());
  EXPECT_FALSE(fault::parse_plan("host_crash:planet=3").has_value());
  EXPECT_FALSE(fault::parse_plan("drop_posted_write:class=tcp").has_value());
}

// --- time-window trigger (from= / until=) -----------------------------------------

TEST(FaultPlan, ParsesWindowsAndRejectsEmptyOnes) {
  auto plan = fault::parse_plan("drop_posted_write:from=1ms,until=2ms;"
                                "delay_posted_write:extra=5us,nth=2,from=500us,until=3ms");
  ASSERT_TRUE(plan.has_value()) << plan.status().to_string();
  const auto& storm = plan->faults[0];
  EXPECT_EQ(storm.window_start, 1'000'000);
  EXPECT_EQ(storm.window_end, 2'000'000);
  // A window-only trigger is a storm: count defaults to unlimited, so it
  // hits every in-window op, not just the first.
  EXPECT_EQ(storm.count, 0u);
  // With nth present the usual once-by-default budget stays.
  EXPECT_EQ(plan->faults[1].count, 1u);

  EXPECT_FALSE(fault::parse_plan("drop_posted_write:from=2ms,until=2ms").has_value());
  EXPECT_FALSE(fault::parse_plan("drop_posted_write:from=3ms,until=1ms").has_value());
}

TEST(FaultWindow, StormFiresOnEveryInWindowOpOnly) {
  sim::Engine eng;
  auto plan = fault::parse_plan("seed=3;drop_posted_write:from=1ms,until=2ms");
  ASSERT_TRUE(plan.has_value());
  auto& inj = fault::Injector::global();
  inj.configure(std::move(*plan));
  inj.arm(eng, {});

  EXPECT_FALSE(inj.on_posted_write(0, 1, false, 64).drop) << "before the window";
  eng.run_until(1'500'000);
  EXPECT_TRUE(inj.on_posted_write(0, 1, false, 64).drop);
  EXPECT_TRUE(inj.on_posted_write(0, 1, false, 64).drop) << "a storm hits every op";
  eng.run_until(2'000'000);
  EXPECT_FALSE(inj.on_posted_write(0, 1, false, 64).drop) << "the end bound is exclusive";
  inj.disarm();
}

TEST(FaultWindow, NthCountsInWindowOpsOnly) {
  sim::Engine eng;
  auto plan =
      fault::parse_plan("seed=3;delay_posted_write:extra=5us,nth=2,from=1ms,until=3ms");
  ASSERT_TRUE(plan.has_value());
  auto& inj = fault::Injector::global();
  inj.configure(std::move(*plan));
  inj.arm(eng, {});

  // Out-of-window traffic must not advance the nth counter.
  EXPECT_EQ(inj.on_posted_write(0, 1, false, 64).extra_ns, 0);
  EXPECT_EQ(inj.on_posted_write(0, 1, false, 64).extra_ns, 0);
  eng.run_until(1'200'000);
  EXPECT_EQ(inj.on_posted_write(0, 1, false, 64).extra_ns, 0) << "1st in-window op";
  EXPECT_EQ(inj.on_posted_write(0, 1, false, 64).extra_ns, 5'000) << "2nd fires";
  EXPECT_EQ(inj.on_posted_write(0, 1, false, 64).extra_ns, 0) << "count=1 budget spent";
  inj.disarm();
}

TEST(FaultWindow, WindowIsRelativeToArmTime) {
  sim::Engine eng;
  eng.run_until(10'000'000);  // the scenario was built late
  auto plan = fault::parse_plan("seed=3;drop_posted_write:from=0,until=1ms");
  ASSERT_TRUE(plan.has_value());
  auto& inj = fault::Injector::global();
  inj.configure(std::move(*plan));
  EXPECT_FALSE(inj.on_posted_write(0, 1, false, 64).drop) << "not armed yet";
  inj.arm(eng, {});
  EXPECT_TRUE(inj.on_posted_write(0, 1, false, 64).drop)
      << "window opens at arm time, same origin as `at=`";
  eng.run_until(11'000'000);
  EXPECT_FALSE(inj.on_posted_write(0, 1, false, 64).drop);
  inj.disarm();
}

// --- drop_posted_write ------------------------------------------------------------

TEST(FaultRecovery, LostDoorbellIsRetried) {
  // With a host-side SQ the only BAR write on the submit path is the
  // doorbell; dropping it leaves a valid SQE that the device never fetches.
  // The per-command deadline must fire and the retry (re-push + re-ring)
  // must complete the I/O.
  Chaos chaos("seed=3;drop_posted_write:src=1,class=bar,nth=1");
  Testbed tb(small_testbed(2));
  driver::Client::Config cc = recovering_client();
  cc.sq_placement = driver::Client::SqPlacement::host_side;
  auto stack = bring_up(tb, 0, 1, cc);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  chaos.arm(tb);

  write_read_verify(tb, *stack->client, 1, 100, 4096, 0xd00d);
  EXPECT_EQ(chaos.posted_drops(), 1u);
  EXPECT_GE(stack->client->stats().cmd_timeouts.value(), 1u);
  EXPECT_GE(stack->client->stats().cmd_retries.value(), 1u);
}

TEST(FaultRecovery, DelayedCqeIsAbsorbedWithinDeadline) {
  // A CQE arriving 200 us late is under the 500 us deadline: no retry, no
  // recovery, just latency.
  Chaos chaos("seed=3;delay_posted_write:src=0,dst=1,extra=200us,nth=1");
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1, recovering_client());
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  chaos.arm(tb);

  write_read_verify(tb, *stack->client, 1, 200, 4096, 0xcafe);
  EXPECT_EQ(chaos.posted_delays(), 1u);
  EXPECT_EQ(stack->client->stats().cmd_timeouts.value(), 0u);
  EXPECT_EQ(stack->client->stats().qp_recoveries.value(), 0u);
}

TEST(FaultRecovery, LostCqeDrivesQueuePairRecovery) {
  // Drop the device->client completion write outright. With the retry
  // budget at 1, the deadline escalates straight to the queue-pair
  // re-create path (delete + create through the manager's mailbox), after
  // which the command is replayed.
  Chaos chaos("seed=3;drop_posted_write:src=0,dst=1,nth=1");
  Testbed tb(small_testbed(2));
  driver::Client::Config cc = recovering_client();
  cc.cmd_retry_limit = 1;
  auto stack = bring_up(tb, 0, 1, cc);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  chaos.arm(tb);

  const std::uint64_t buf = alloc_pattern_buffer(tb, 1, 4096, 0xbeef);
  auto wr = do_io(tb, *stack->client, {block::Op::write, 300, 8, buf});
  ASSERT_TRUE(wr.has_value()) << wr.status().to_string();
  EXPECT_TRUE(wr->status.is_ok()) << wr->status.to_string();
  EXPECT_EQ(chaos.posted_drops(), 1u);
  EXPECT_GE(stack->client->stats().qp_recoveries.value(), 1u);

  // The rebuilt queue pair carries verified I/O.
  write_read_verify(tb, *stack->client, 1, 400, 8192, 0xfeed);
}

// --- ntb_link_down ----------------------------------------------------------------

TEST(FaultRecovery, LinkOutageHealsWithoutQueueLoss) {
  // A 400 us cable pull in the middle of a verified job: commands caught in
  // the outage time out and retry until the path heals. No queue-pair
  // recovery should be needed and not a single op may fail.
  Chaos chaos("seed=3;ntb_link_down:host=1,at=200us,for=400us");
  Testbed tb(small_testbed(2));
  driver::Client::Config cc = recovering_client();
  cc.cmd_retry_limit = 8;
  auto stack = bring_up(tb, 0, 1, cc);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  chaos.arm(tb);

  workload::JobSpec spec;
  spec.pattern = workload::JobSpec::Pattern::randrw;
  spec.ops = 300;
  spec.queue_depth = 2;
  spec.verify = true;
  auto result = workload::run_job_blocking(tb.cluster(), *stack->client, 1, spec);
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_EQ(result->errors, 0u);
  EXPECT_EQ(result->verify_failures, 0u);
  EXPECT_EQ(chaos.link_downs(), 1u);
  EXPECT_EQ(chaos.link_ups(), 1u);
}

// --- host_crash -------------------------------------------------------------------

TEST(FaultRecovery, ManagerCrashLeavesDataPathAndAttachTimesOut) {
  Chaos chaos("seed=3;host_crash:host=0,at=100us");
  Testbed tb(small_testbed(3));
  auto stack = bring_up(tb, 0, 1, recovering_client());
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  chaos.arm(tb);
  tb.engine().run_for(1_ms);
  EXPECT_EQ(chaos.host_crashes(), 1u);

  // The manager is off the data path (Section V): established clients keep
  // doing verified I/O against the controller.
  write_read_verify(tb, *stack->client, 1, 500, 4096, 0xaaaa);

  // A new client finds the dead manager's mailbox (a crash does not
  // withdraw the metadata segment) and must get a timeout Status within its
  // configured deadline — not hang forever.
  driver::Client::Config impatient;
  impatient.mailbox_timeout_ns = 2_ms;
  const sim::Time t0 = tb.engine().now();
  auto orphan =
      tb.wait(driver::Client::attach(tb.service(), 2, tb.device_id(), impatient), 60_s);
  EXPECT_FALSE(orphan.has_value());
  if (!orphan) {
    EXPECT_EQ(orphan.status().code(), Errc::timed_out);
  }
  const sim::Duration elapsed = tb.engine().now() - t0;
  EXPECT_GE(elapsed, 2_ms);
  EXPECT_LT(elapsed, 10_ms) << "attach should fail shortly after its deadline";
}

TEST(FaultRecovery, DeadClientQueuePairIsReaped) {
  // Client on host 2 heartbeats into its mailbox slot, then crashes. The
  // manager's reaper notices the stale beat and deletes the orphaned queue
  // pair so the qid becomes available again.
  Chaos chaos("seed=3;host_crash:host=2,at=300us");
  Testbed tb(small_testbed(4));
  driver::Client::Config cc = recovering_client();
  cc.heartbeat_interval_ns = 50'000;
  driver::Manager::Config mc;
  mc.client_heartbeat_timeout_ns = 300'000;
  mc.reaper_interval_ns = 100'000;
  auto manager = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), mc));
  ASSERT_TRUE(manager.has_value()) << manager.status().to_string();
  auto c1 = tb.wait(driver::Client::attach(tb.service(), 1, tb.device_id(), cc));
  auto c2 = tb.wait(driver::Client::attach(tb.service(), 2, tb.device_id(), cc));
  ASSERT_TRUE(c1.has_value() && c2.has_value());
  EXPECT_EQ((*manager)->active_queue_pairs(), 3u);  // admin + 2 clients
  chaos.arm(tb);

  tb.engine().run_for(3_ms);
  EXPECT_EQ(chaos.host_crashes(), 1u);
  EXPECT_GE((*manager)->stats().qps_reaped.value(), 1u);
  EXPECT_EQ((*manager)->active_queue_pairs(), 2u);  // admin + survivor

  // The survivor is untouched and the freed qid can be claimed again.
  write_read_verify(tb, **c1, 1, 600, 4096, 0xbbbb);
  auto c3 = tb.wait(driver::Client::attach(tb.service(), 3, tb.device_id(), cc));
  ASSERT_TRUE(c3.has_value()) << c3.status().to_string();
  write_read_verify(tb, **c3, 3, 700, 4096, 0xcccc);
}

// --- ctrl_error -------------------------------------------------------------------

TEST(FaultRecovery, TransientControllerErrorIsRetried) {
  // The controller completes the first I/O command with Internal Error; the
  // client treats that status as retryable and resubmits.
  Chaos chaos("seed=3;ctrl_error:nth=1");
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1, recovering_client());
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  chaos.arm(tb);

  write_read_verify(tb, *stack->client, 1, 800, 4096, 0xdddd);
  EXPECT_EQ(chaos.ctrl_errors(), 1u);
  EXPECT_GE(stack->client->stats().cmd_retries.value(), 1u);
}

TEST(FaultRecovery, FatalControllerErrorIsResetByWatchdog) {
  // fatal=1 raises CSTS.CFS instead of completing the command. The
  // manager's watchdog polls CSTS, resets and re-initializes the
  // controller, and drops all queue bookkeeping; the client's deadline
  // escalates to queue-pair recovery, which re-creates its pair through the
  // mailbox and replays the command.
  Chaos chaos("seed=3;ctrl_error:nth=1,fatal=1");
  Testbed tb(small_testbed(2));
  driver::Manager::Config mc;
  mc.csts_poll_interval_ns = 100'000;
  driver::Client::Config cc = recovering_client();
  cc.cmd_retry_limit = 2;
  cc.retry_backoff_ns = 100'000;
  auto manager = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(), mc));
  ASSERT_TRUE(manager.has_value()) << manager.status().to_string();
  auto client = tb.wait(driver::Client::attach(tb.service(), 1, tb.device_id(), cc));
  ASSERT_TRUE(client.has_value()) << client.status().to_string();
  chaos.arm(tb);

  const std::uint64_t buf = alloc_pattern_buffer(tb, 1, 4096, 0x5151);
  auto wr = tb.wait_plain((*client)->submit({block::Op::write, 900, 8, buf}), 120_s);
  ASSERT_TRUE(wr.has_value()) << wr.status().to_string();
  EXPECT_TRUE(wr->status.is_ok()) << wr->status.to_string();
  EXPECT_EQ(chaos.ctrl_errors(), 1u);
  // A client racing the reset may re-ring a doorbell for its now-deleted
  // queue, which is itself controller-fatal (pinned by nvme_test); the
  // watchdog then resets again. The cycle is bounded by the client's retry
  // budget and always converges once queue recovery finishes.
  EXPECT_GE((*manager)->stats().ctrl_resets.value(), 1u);
  EXPECT_GE((*client)->stats().qp_recoveries.value(), 1u);

  // The reset controller carries verified I/O again.
  write_read_verify(tb, **client, 1, 1000, 8192, 0x5252);
}

// --- drop_capsule (NVMe-oF) -------------------------------------------------------

struct NvmeofStack {
  std::unique_ptr<nvmeof::Target> target;
  std::unique_ptr<nvmeof::Initiator> initiator;
};

Result<NvmeofStack> bring_up_nvmeof(Testbed& tb, nvmeof::Initiator::Config ic) {
  auto target =
      tb.wait(nvmeof::Target::start(tb.cluster(), tb.nvme_endpoint(), tb.network(), {}));
  if (!target) return target.status();
  auto initiator =
      tb.wait(nvmeof::Initiator::connect(tb.cluster(), tb.network(), **target, 1, ic));
  if (!initiator) return initiator.status();
  return NvmeofStack{std::move(*target), std::move(*initiator)};
}

TEST(FaultRecovery, DroppedCapsuleIsResent) {
  // Lose the first two SENDs (the command capsule and its retry); the third
  // attempt goes through. Exercises the initiator's per-capsule deadline.
  Chaos chaos("seed=5;drop_capsule:nth=1,count=2");
  Testbed tb(small_testbed(2));
  nvmeof::Initiator::Config ic;
  ic.capsule_timeout_ns = 300'000;
  ic.capsule_retry_limit = 3;
  ic.retry_backoff_ns = 50'000;
  auto stack = bring_up_nvmeof(tb, ic);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  chaos.arm(tb);

  write_read_verify(tb, *stack->initiator, 1, 1100, 4096, 0x6161);
  EXPECT_EQ(chaos.capsule_drops(), 2u);
  EXPECT_GE(stack->initiator->stats().capsule_retries.value(), 2u);
  EXPECT_EQ(stack->initiator->stats().reconnects.value(), 0u);
}

TEST(FaultRecovery, CapsuleLossEscalatesToReconnectAndReplay) {
  // With the retry budget at 1, losing both the capsule and its retry
  // forces a connection re-establishment; the in-flight command is replayed
  // on the new queue pair.
  Chaos chaos("seed=5;drop_capsule:nth=1,count=2");
  Testbed tb(small_testbed(2));
  nvmeof::Initiator::Config ic;
  ic.capsule_timeout_ns = 300'000;
  ic.capsule_retry_limit = 1;
  auto stack = bring_up_nvmeof(tb, ic);
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  chaos.arm(tb);

  write_read_verify(tb, *stack->initiator, 1, 1200, 4096, 0x7171);
  EXPECT_EQ(chaos.capsule_drops(), 2u);
  EXPECT_GE(stack->initiator->stats().reconnects.value(), 1u);

  // The replacement connection keeps working.
  write_read_verify(tb, *stack->initiator, 1, 1300, 8192, 0x7272);
}

// --- corruption kinds (flip_dma_bits / torn_dma_write / stale_read) ---------------

/// PI-formatted namespace plus a client running the full protection
/// pipeline: tuples generated before the bounce copy, PRACT writes, PRCHK
/// reads, and a host-side verify after the DMA lands.
TestbedConfig pi_testbed(std::uint32_t hosts) {
  TestbedConfig cfg = small_testbed(hosts);
  cfg.nvme.pi_enabled = true;
  return cfg;
}

driver::Client::Config pi_client() {
  driver::Client::Config cc = recovering_client();
  cc.pi_verify = true;
  return cc;
}

TEST(FaultRecovery, FlippedReadPayloadIsCaughtAndRetried) {
  // The acceptance scenario for end-to-end integrity: flip one bit of the
  // controller's DMA data write on the read return path (the 2nd host0 ->
  // host1 posted write: write CQE is #1, read data is #2). The controller
  // saw intact media so the CQE says success; only the client's shadow-
  // tuple verify can catch it, and a resubmission must heal it.
  Chaos chaos("seed=3;flip_dma_bits:src=0,dst=1,nth=2,count=1");
  Testbed tb(pi_testbed(2));
  auto stack = bring_up(tb, 0, 1, pi_client());
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  chaos.arm(tb);
  const std::uint64_t base = integrity::stats().client_verify_failures.value();

  write_read_verify(tb, *stack->client, 1, 100, 4096, 0xd00d);
  EXPECT_EQ(chaos.bit_flips(), 1u);
  EXPECT_GE(integrity::stats().client_verify_failures.value() - base, 1u);
  EXPECT_GE(stack->client->stats().cmd_retries.value(), 1u);
}

TEST(FaultRecovery, TornReadPayloadIsCaughtAndRetried) {
  // Deliver only a prefix of the read payload. The bounce slot still holds
  // bytes from an earlier transfer, so the tail of the block is garbage;
  // the shadow-tuple guard catches it and the retry re-DMAs the full data.
  // (Writes to two LBAs first so the slot's leftover content differs from
  // the data being read: host0->host1 writes are CQE, CQE, then read data.)
  Chaos chaos("seed=3;torn_dma_write:src=0,dst=1,class=dram,nth=3,count=1");
  Testbed tb(pi_testbed(2));
  auto stack = bring_up(tb, 0, 1, pi_client());
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  chaos.arm(tb);
  const std::uint64_t base = integrity::stats().client_verify_failures.value();

  const std::uint64_t a = alloc_pattern_buffer(tb, 1, 4096, 0xaaaa);
  auto w1 = do_io(tb, *stack->client, {block::Op::write, 100, 8, a});
  ASSERT_TRUE(w1.has_value() && w1->status.is_ok());
  const std::uint64_t b = alloc_pattern_buffer(tb, 1, 4096, 0xbbbb);
  auto w2 = do_io(tb, *stack->client, {block::Op::write, 300, 8, b});
  ASSERT_TRUE(w2.has_value() && w2->status.is_ok());

  const std::uint64_t r = alloc_pattern_buffer(tb, 1, 4096, 0x1111);
  auto rd = do_io(tb, *stack->client, {block::Op::read, 100, 8, r});
  ASSERT_TRUE(rd.has_value()) << rd.status().to_string();
  EXPECT_TRUE(rd->status.is_ok()) << rd->status.to_string();
  EXPECT_TRUE(buffer_matches(tb, 1, r, 4096, 0xaaaa));
  EXPECT_EQ(chaos.torn_writes(), 1u);
  EXPECT_GE(integrity::stats().client_verify_failures.value() - base, 1u);
}

TEST(FaultRecovery, StaleWritePayloadIsDetectedNotRecovered) {
  // Stale DMA read on the write path: the controller fetches zeros instead
  // of the client's bounce data and — with PRACT — seals a valid tuple over
  // the wrong bytes. Controller-side checks can never catch this; the
  // client's shadow tuple flags every subsequent read, and since re-reading
  // returns the same sealed-stale data, the retries exhaust and the read
  // fails. Detection without silent corruption is the contract here.
  Chaos chaos("seed=3;stale_read:src=0,dst=1,nth=1,count=1");
  Testbed tb(pi_testbed(2));
  auto stack = bring_up(tb, 0, 1, pi_client());
  ASSERT_TRUE(stack.has_value()) << stack.status().to_string();
  chaos.arm(tb);
  const std::uint64_t base = integrity::stats().client_verify_failures.value();

  const std::uint64_t w = alloc_pattern_buffer(tb, 1, 4096, 0xfade);
  auto wr = do_io(tb, *stack->client, {block::Op::write, 100, 8, w});
  ASSERT_TRUE(wr.has_value() && wr->status.is_ok());
  EXPECT_EQ(chaos.stale_reads(), 1u);

  const std::uint64_t r = alloc_pattern_buffer(tb, 1, 4096, 0x2222);
  auto rd = do_io(tb, *stack->client, {block::Op::read, 100, 8, r});
  ASSERT_TRUE(rd.has_value()) << rd.status().to_string();
  EXPECT_FALSE(rd->status.is_ok()) << "sealed-stale data must not verify";
  EXPECT_GE(integrity::stats().client_verify_failures.value() - base, 1u);

  // The stack itself is healthy: fresh I/O passes end to end.
  write_read_verify(tb, *stack->client, 1, 500, 4096, 0xfeed);
}

}  // namespace
}  // namespace nvmeshare
