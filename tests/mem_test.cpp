// Unit tests for the memory substrate: sparse DRAM, range allocator, IOMMU.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "mem/allocator.hpp"
#include "mem/iommu.hpp"
#include "mem/phys_mem.hpp"

namespace nvmeshare::mem {
namespace {

TEST(PhysMem, ReadsZeroBeforeWrite) {
  PhysMem m(1 * MiB);
  Bytes buf(64, std::byte{0xFF});
  ASSERT_TRUE(m.read(1234, buf).is_ok());
  for (auto b : buf) EXPECT_EQ(b, std::byte{0});
  EXPECT_EQ(m.resident_pages(), 0u);
}

TEST(PhysMem, WriteReadRoundTrip) {
  PhysMem m(1 * MiB);
  Bytes data = make_pattern(300, 42);
  ASSERT_TRUE(m.write(5000, data).is_ok());
  Bytes out(300);
  ASSERT_TRUE(m.read(5000, out).is_ok());
  EXPECT_EQ(data, out);
}

TEST(PhysMem, CrossPageAccess) {
  PhysMem m(1 * MiB);
  Bytes data = make_pattern(3 * 4096, 7);
  const std::uint64_t addr = 4096 - 17;  // straddles three pages
  ASSERT_TRUE(m.write(addr, data).is_ok());
  Bytes out(data.size());
  ASSERT_TRUE(m.read(addr, out).is_ok());
  EXPECT_EQ(data, out);
  EXPECT_EQ(m.resident_pages(), 4u);
}

TEST(PhysMem, OutOfRangeRejected) {
  PhysMem m(8192);
  Bytes buf(64);
  EXPECT_EQ(m.read(8192 - 32, buf).code(), Errc::out_of_range);
  EXPECT_EQ(m.write(8192 - 32, buf).code(), Errc::out_of_range);
  EXPECT_TRUE(m.read(8192 - 64, buf).is_ok());
}

TEST(PhysMem, PodHelpers) {
  PhysMem m(1 * MiB);
  ASSERT_TRUE(m.write_pod(100, std::uint32_t{0xabcd1234}).is_ok());
  auto v = m.read_pod<std::uint32_t>(100);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0xabcd1234u);
}

TEST(RangeAllocator, AllocatesAligned) {
  RangeAllocator a(0x1000, 1 * MiB);
  auto p = a.alloc(100, 256);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p % 256, 0u);
  EXPECT_GE(*p, 0x1000u);
}

TEST(RangeAllocator, ExhaustsAndRecovers) {
  RangeAllocator a(0, 4096);
  auto p1 = a.alloc(4096, 1);
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(a.alloc(1, 1).error_code(), Errc::resource_exhausted);
  ASSERT_TRUE(a.free(*p1).is_ok());
  EXPECT_TRUE(a.alloc(4096, 1).has_value());
}

TEST(RangeAllocator, CoalescesFreedNeighbors) {
  RangeAllocator a(0, 3 * 4096);
  auto p1 = a.alloc(4096, 4096);
  auto p2 = a.alloc(4096, 4096);
  auto p3 = a.alloc(4096, 4096);
  ASSERT_TRUE(p1 && p2 && p3);
  ASSERT_TRUE(a.free(*p1).is_ok());
  ASSERT_TRUE(a.free(*p3).is_ok());
  ASSERT_TRUE(a.free(*p2).is_ok());  // middle free must merge all three
  EXPECT_TRUE(a.alloc(3 * 4096, 1).has_value());
}

TEST(RangeAllocator, DoubleFreeRejected) {
  RangeAllocator a(0, 4096);
  auto p = a.alloc(64, 64);
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(a.free(*p).is_ok());
  EXPECT_EQ(a.free(*p).code(), Errc::not_found);
}

TEST(RangeAllocator, BadArgsRejected) {
  RangeAllocator a(0, 4096);
  EXPECT_EQ(a.alloc(0, 64).error_code(), Errc::invalid_argument);
  EXPECT_EQ(a.alloc(64, 3).error_code(), Errc::invalid_argument);  // non-pow2
}

TEST(RangeAllocator, AccountsBytes) {
  RangeAllocator a(0, 8192);
  EXPECT_EQ(a.bytes_free(), 8192u);
  auto p = a.alloc(100, 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(a.bytes_used(), 100u);
  ASSERT_TRUE(a.free(*p).is_ok());
  EXPECT_EQ(a.bytes_free(), 8192u);
}

TEST(Iommu, MapTranslateUnmap) {
  Iommu iommu;
  auto cost = iommu.map(0x10000, 0x8000, 8192);
  ASSERT_TRUE(cost.has_value());
  EXPECT_GT(*cost, 0);
  auto t = iommu.translate(0x10000 + 5000);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 0x8000u + 5000u);
  auto uncost = iommu.unmap(0x10000);
  ASSERT_TRUE(uncost.has_value());
  EXPECT_EQ(iommu.translate(0x10000).error_code(), Errc::unmapped_address);
}

TEST(Iommu, RejectsOverlap) {
  Iommu iommu;
  ASSERT_TRUE(iommu.map(0x10000, 0x8000, 8192).has_value());
  EXPECT_EQ(iommu.map(0x11000, 0x20000, 4096).error_code(), Errc::already_exists);
  EXPECT_EQ(iommu.map(0xF000, 0x20000, 8192).error_code(), Errc::already_exists);
  EXPECT_TRUE(iommu.map(0x12000, 0x20000, 4096).has_value());
}

TEST(Iommu, RejectsMisaligned) {
  Iommu iommu;
  EXPECT_EQ(iommu.map(0x10001, 0x8000, 4096).error_code(), Errc::invalid_argument);
  EXPECT_EQ(iommu.map(0x10000, 0x8001, 4096).error_code(), Errc::invalid_argument);
  EXPECT_EQ(iommu.map(0x10000, 0x8000, 0).error_code(), Errc::invalid_argument);
}

TEST(Iommu, CostIsAffineInPages) {
  Iommu::Config cfg;
  Iommu iommu(cfg);
  auto one = iommu.map(0x100000, 0, 4096);
  auto four = iommu.map(0x200000, 0x10000, 4 * 4096);
  ASSERT_TRUE(one && four);
  // Fixed setup cost plus a per-page term: four pages cost three extra
  // PTE stores over one page, not 4x the total.
  EXPECT_EQ(*four - *one, 3 * cfg.map_per_page_ns);
  EXPECT_EQ(*one, cfg.map_fixed_ns + cfg.map_per_page_ns);

  auto unmap_one = iommu.unmap(0x100000);
  auto unmap_four = iommu.unmap(0x200000);
  ASSERT_TRUE(unmap_one && unmap_four);
  // Teardown is dominated by the single range invalidation.
  EXPECT_EQ(*unmap_four - *unmap_one, 3 * cfg.unmap_per_page_ns);
}

TEST(Iommu, TranslationAtBoundaries) {
  Iommu iommu;
  ASSERT_TRUE(iommu.map(0x10000, 0x8000, 4096).has_value());
  EXPECT_TRUE(iommu.translate(0x10000).has_value());
  EXPECT_TRUE(iommu.translate(0x10FFF).has_value());
  EXPECT_FALSE(iommu.translate(0x11000).has_value());
  EXPECT_FALSE(iommu.translate(0xFFFF).has_value());
}

}  // namespace
}  // namespace nvmeshare::mem
