// Unit tests for the NVMe-oF baseline: capsule format, target lifecycle,
// multiple connections, data integrity, error propagation.
#include <gtest/gtest.h>

#include "nvmeof/initiator.hpp"
#include "nvmeof/target.hpp"
#include "test_util.hpp"

namespace nvmeshare::nvmeof {
namespace {

using namespace testutil;

struct NvmeofFixture : ::testing::Test {
  NvmeofFixture() : tb(small_testbed(3)) {
    auto t = tb.wait(Target::start(tb.cluster(), tb.nvme_endpoint(), tb.network(), {}));
    EXPECT_TRUE(t.has_value()) << t.status().to_string();
    target = std::move(*t);
  }

  Result<std::unique_ptr<Initiator>> connect(rdma::NodeId node) {
    return tb.wait(Initiator::connect(tb.cluster(), tb.network(), *target, node, {}));
  }

  Testbed tb;
  std::unique_ptr<Target> target;
};

TEST(Capsule, WireSizes) {
  EXPECT_EQ(sizeof(CommandCapsule), 64u);
  EXPECT_EQ(sizeof(ResponseCapsule), 16u);
}

TEST_F(NvmeofFixture, TargetExposesGeometry) {
  EXPECT_EQ(target->controller().block_size(), 512u);
  EXPECT_EQ(target->controller().capacity_blocks(), tb.config().nvme.capacity_blocks);
  EXPECT_EQ(target->connection_count(), 0u);
}

TEST_F(NvmeofFixture, WriteReadVerify) {
  auto initiator = connect(1);
  ASSERT_TRUE(initiator.has_value()) << initiator.status().to_string();
  write_read_verify(tb, **initiator, 1, 1000, 4096, 0x0F0F);
  EXPECT_EQ(target->stats().errors, 0u);
  EXPECT_EQ(target->stats().reads, 1u);
  EXPECT_EQ(target->stats().writes, 1u);
}

TEST_F(NvmeofFixture, LargeTransfers) {
  auto initiator = connect(1);
  ASSERT_TRUE(initiator.has_value());
  write_read_verify(tb, **initiator, 1, 5000, 128 * KiB, 0x1F2F);
}

TEST_F(NvmeofFixture, FlushWorks) {
  auto initiator = connect(1);
  ASSERT_TRUE(initiator.has_value());
  auto fl = do_io(tb, **initiator, {block::Op::flush, 0, 0, 0});
  ASSERT_TRUE(fl.has_value());
  EXPECT_TRUE(fl->status.is_ok());
}

TEST_F(NvmeofFixture, TwoInitiatorsDedicatedQueues) {
  auto i1 = connect(1);
  auto i2 = connect(2);
  ASSERT_TRUE(i1.has_value() && i2.has_value());
  EXPECT_EQ(target->connection_count(), 2u);
  // Each connection gets its own NVMe queue pair on the target.
  EXPECT_EQ(tb.controller().active_io_sq_count(), 2);

  write_read_verify(tb, **i1, 1, 2000, 4096, 0x3A3A);
  write_read_verify(tb, **i2, 2, 3000, 4096, 0x4B4B);

  // Initiator 2 reads what initiator 1 wrote (same backing device).
  const std::uint64_t rbuf = alloc_pattern_buffer(tb, 2, 4096, 0);
  auto rd = do_io(tb, **i2, {block::Op::read, 2000, 8, rbuf});
  ASSERT_TRUE(rd.has_value() && rd->status.is_ok());
  EXPECT_TRUE(buffer_matches(tb, 2, rbuf, 4096, 0x3A3A));
}

TEST_F(NvmeofFixture, LbaOutOfRangeRejectedBeforeTheWire) {
  auto initiator = connect(1);
  ASSERT_TRUE(initiator.has_value());
  const std::uint64_t buf = alloc_pattern_buffer(tb, 1, 4096, 1);
  block::Request r{block::Op::read, (*initiator)->capacity_blocks() - 1, 8, buf};
  const auto sends_before = tb.network().stats().sends;
  auto completion = do_io(tb, **initiator, r);
  ASSERT_TRUE(completion.has_value());
  // The initiator's block layer rejects it locally (kernel semantics); no
  // capsule ever crosses the network.
  EXPECT_EQ(completion->status.code(), Errc::out_of_range);
  EXPECT_EQ(tb.network().stats().sends, sends_before);
}

TEST_F(NvmeofFixture, QueueDepthStress) {
  auto initiator = connect(1);
  ASSERT_TRUE(initiator.has_value());
  workload::JobSpec spec;
  spec.pattern = workload::JobSpec::Pattern::randrw;
  spec.ops = 400;
  spec.queue_depth = 16;
  spec.verify = true;
  spec.seed = 77;
  auto result = tb.wait(workload::run_job(tb.cluster(), **initiator, 1, spec), 120_s);
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_EQ(result->errors, 0u);
  EXPECT_EQ(result->verify_failures, 0u);
}

TEST_F(NvmeofFixture, NetworkTrafficShapeMatchesProtocol) {
  auto initiator = connect(1);
  ASSERT_TRUE(initiator.has_value());
  const auto before = tb.network().stats();
  // One read: command capsule SEND + RDMA WRITE (data) + response SEND.
  const std::uint64_t buf = alloc_pattern_buffer(tb, 1, 4096, 1);
  auto rd = do_io(tb, **initiator, {block::Op::read, 0, 8, buf});
  ASSERT_TRUE(rd.has_value() && rd->status.is_ok());
  EXPECT_EQ(tb.network().stats().sends, before.sends + 2);
  EXPECT_EQ(tb.network().stats().rdma_writes, before.rdma_writes + 1);
  EXPECT_EQ(tb.network().stats().rdma_reads, before.rdma_reads);

  // One 4 KiB write: the payload rides in-capsule (SPDK in-capsule data),
  // so it is SEND + response SEND with no one-sided transfer.
  auto wr = do_io(tb, **initiator, {block::Op::write, 0, 8, buf});
  ASSERT_TRUE(wr.has_value() && wr->status.is_ok());
  EXPECT_EQ(tb.network().stats().sends, before.sends + 4);
  EXPECT_EQ(tb.network().stats().rdma_reads, before.rdma_reads);

  // One 16 KiB write exceeds the in-capsule limit: the target pulls the
  // payload with an RDMA READ.
  const std::uint64_t big = alloc_pattern_buffer(tb, 1, 16 * KiB, 2);
  auto big_wr = do_io(tb, **initiator, {block::Op::write, 64, 32, big});
  ASSERT_TRUE(big_wr.has_value() && big_wr->status.is_ok());
  EXPECT_EQ(tb.network().stats().rdma_reads, before.rdma_reads + 1);
}

TEST_F(NvmeofFixture, InlineWriteDeliversCorrectBytes) {
  auto initiator = connect(1);
  ASSERT_TRUE(initiator.has_value());
  // Exactly at the inline boundary (4 KiB) and just above it (4.5 KiB).
  write_read_verify(tb, **initiator, 1, 7000, 4096, 0xAAA1);
  write_read_verify(tb, **initiator, 1, 8000, 4096 + 512, 0xBBB2);
}

}  // namespace
}  // namespace nvmeshare::nvmeof
