// Tests for the extended feature set: Write Zeroes through every driver,
// the SMART/Health log page, DMA failure injection, and multi-device
// clusters.
#include <gtest/gtest.h>

#include "nvmeof/initiator.hpp"
#include "nvmeof/target.hpp"
#include "test_util.hpp"

namespace nvmeshare {
namespace {

using namespace testutil;

// --- Write Zeroes through every stack ---------------------------------------------

void check_write_zeroes(Testbed& tb, block::BlockDevice& dev, sisci::NodeId node) {
  const std::uint64_t lba = 5000;
  const std::size_t bytes = 8192;
  const auto nblocks = static_cast<std::uint32_t>(bytes / dev.block_size());

  // Write a pattern, zero the middle half, read the whole range back.
  const std::uint64_t buf = alloc_pattern_buffer(tb, node, bytes, 0x2e2e);
  auto wr = do_io(tb, dev, {block::Op::write, lba, nblocks, buf});
  ASSERT_TRUE(wr.has_value() && wr->status.is_ok());

  auto wz = do_io(tb, dev, {block::Op::write_zeroes, lba + nblocks / 4, nblocks / 2, 0});
  ASSERT_TRUE(wz.has_value());
  ASSERT_TRUE(wz->status.is_ok()) << wz->status.to_string();

  const std::uint64_t rbuf = alloc_pattern_buffer(tb, node, bytes, 1);
  auto rd = do_io(tb, dev, {block::Op::read, lba, nblocks, rbuf});
  ASSERT_TRUE(rd.has_value() && rd->status.is_ok());

  Bytes out(bytes);
  ASSERT_TRUE(tb.fabric().host_dram(node).read(rbuf, out).is_ok());
  Bytes expect = make_pattern(bytes, 0x2e2e);
  const std::size_t zero_from = (nblocks / 4) * dev.block_size();
  const std::size_t zero_len = (nblocks / 2) * dev.block_size();
  std::fill(expect.begin() + static_cast<long>(zero_from),
            expect.begin() + static_cast<long>(zero_from + zero_len), std::byte{0});
  EXPECT_EQ(out, expect);
}

TEST(WriteZeroes, DistributedClientRemote) {
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value());
  check_write_zeroes(tb, *stack->client, 1);
}

TEST(WriteZeroes, LocalDriver) {
  Testbed tb(small_testbed(1));
  auto drv = tb.wait(
      driver::LocalDriver::start(tb.cluster(), tb.nvme_endpoint(), &tb.irq(0), {}));
  ASSERT_TRUE(drv.has_value());
  check_write_zeroes(tb, **drv, 0);
}

TEST(WriteZeroes, NvmeofInitiator) {
  Testbed tb(small_testbed(2));
  auto target = tb.wait(
      nvmeof::Target::start(tb.cluster(), tb.nvme_endpoint(), tb.network(), {}));
  ASSERT_TRUE(target.has_value());
  auto initiator =
      tb.wait(nvmeof::Initiator::connect(tb.cluster(), tb.network(), **target, 1, {}));
  ASSERT_TRUE(initiator.has_value());
  check_write_zeroes(tb, **initiator, 1);
}

// --- Dataset Management (discard / TRIM) ---------------------------------------------

void check_discard(Testbed& tb, block::BlockDevice& dev, sisci::NodeId node) {
  const std::uint64_t lba = 7000;
  const std::size_t bytes = 16 * KiB;
  const auto nblocks = static_cast<std::uint32_t>(bytes / dev.block_size());

  const std::uint64_t buf = alloc_pattern_buffer(tb, node, bytes, 0x3d3d);
  auto wr = do_io(tb, dev, {block::Op::write, lba, nblocks, buf});
  ASSERT_TRUE(wr.has_value() && wr->status.is_ok());

  // Discard the second half.
  auto dsm = do_io(tb, dev, {block::Op::discard, lba + nblocks / 2, nblocks / 2, 0});
  ASSERT_TRUE(dsm.has_value());
  ASSERT_TRUE(dsm->status.is_ok()) << dsm->status.to_string();

  const std::uint64_t rbuf = alloc_pattern_buffer(tb, node, bytes, 1);
  auto rd = do_io(tb, dev, {block::Op::read, lba, nblocks, rbuf});
  ASSERT_TRUE(rd.has_value() && rd->status.is_ok());
  Bytes out(bytes);
  ASSERT_TRUE(tb.fabric().host_dram(node).read(rbuf, out).is_ok());
  Bytes expect = make_pattern(bytes, 0x3d3d);
  std::fill(expect.begin() + static_cast<long>(bytes / 2), expect.end(), std::byte{0});
  EXPECT_EQ(out, expect);
}

TEST(Discard, DistributedClientRemote) {
  Testbed tb(small_testbed(2));
  auto stack = bring_up(tb, 0, 1);
  ASSERT_TRUE(stack.has_value());
  check_discard(tb, *stack->client, 1);
}

TEST(Discard, DistributedClientIommuPath) {
  Testbed tb(small_testbed(2));
  driver::Client::Config cc;
  cc.data_path = driver::Client::DataPath::iommu;
  auto stack = bring_up(tb, 0, 1, cc);
  ASSERT_TRUE(stack.has_value());
  check_discard(tb, *stack->client, 1);
}

TEST(Discard, LocalDriver) {
  Testbed tb(small_testbed(1));
  auto drv = tb.wait(
      driver::LocalDriver::start(tb.cluster(), tb.nvme_endpoint(), &tb.irq(0), {}));
  ASSERT_TRUE(drv.has_value());
  check_discard(tb, **drv, 0);
}

TEST(Discard, NvmeofInitiator) {
  Testbed tb(small_testbed(2));
  auto target = tb.wait(
      nvmeof::Target::start(tb.cluster(), tb.nvme_endpoint(), tb.network(), {}));
  ASSERT_TRUE(target.has_value());
  auto initiator =
      tb.wait(nvmeof::Initiator::connect(tb.cluster(), tb.network(), **target, 1, {}));
  ASSERT_TRUE(initiator.has_value());
  check_discard(tb, **initiator, 1);
}

TEST(Discard, DeallocateReleasesBackingStore) {
  // TRIM of a whole chunk must actually drop the backing memory.
  Testbed tb(small_testbed(1));
  auto drv = tb.wait(
      driver::LocalDriver::start(tb.cluster(), tb.nvme_endpoint(), &tb.irq(0), {}));
  ASSERT_TRUE(drv.has_value());
  const std::uint64_t buf = alloc_pattern_buffer(tb, 0, 64 * KiB, 0x44);
  auto wr = do_io(tb, **drv, {block::Op::write, 0, 128, buf});
  ASSERT_TRUE(wr.has_value() && wr->status.is_ok());
  const std::size_t resident = tb.controller().store().resident_chunks();
  EXPECT_GT(resident, 0u);
  auto dsm = do_io(tb, **drv, {block::Op::discard, 0, 128, 0});
  ASSERT_TRUE(dsm.has_value() && dsm->status.is_ok());
  EXPECT_LT(tb.controller().store().resident_chunks(), resident);
}

// --- SMART / Health log page -------------------------------------------------------

TEST(SmartLog, CountsLiveTraffic) {
  Testbed tb(small_testbed(1));
  auto local = tb.wait(
      driver::LocalDriver::start(tb.cluster(), tb.nvme_endpoint(), &tb.irq(0), {}));
  ASSERT_TRUE(local.has_value());
  write_read_verify(tb, **local, 0, 10, 4096, 0x77);
  write_read_verify(tb, **local, 0, 20, 4096, 0x78);

  // Fetch the SMART log through the admin path of the owning driver.
  auto log_buf = tb.cluster().alloc_dram(0, 4096, 4096);
  ASSERT_TRUE(log_buf.has_value());
  auto cqe = tb.wait((*local)->controller().submit_admin(
      nvme::make_get_log_page(0, nvme::LogPageId::smart_health, 512, *log_buf)));
  ASSERT_TRUE(cqe.has_value());
  EXPECT_TRUE(cqe->ok());

  Bytes payload(512);
  ASSERT_TRUE(tb.fabric().host_dram(0).read(*log_buf, payload).is_ok());
  const auto smart = nvme::parse_smart_log(payload);
  EXPECT_EQ(smart.critical_warning, 0);
  EXPECT_EQ(smart.composite_temperature_k, 310);
  EXPECT_EQ(smart.available_spare_pct, 100);
  EXPECT_EQ(smart.host_read_commands, tb.controller().stats().io_reads);
  EXPECT_EQ(smart.host_write_commands, tb.controller().stats().io_writes);
  EXPECT_GE(smart.host_read_commands, 2u);
  EXPECT_GE(smart.host_write_commands, 2u);
}

// --- DMA failure injection -----------------------------------------------------------

TEST(FaultInjection, UnmappedSqMemoryIsControllerFatal) {
  Testbed tb(small_testbed(1));
  auto ctrl = tb.wait(driver::BareController::init(tb.cluster(), tb.nvme_endpoint(), {}));
  ASSERT_TRUE(ctrl.has_value());

  // An SQ whose base resolves nowhere: the gap between DRAM and MMIO.
  const std::uint64_t bogus = tb.config().dram_per_host + 0x100000;
  auto cq_mem = tb.cluster().alloc_dram(0, 64 * 16, 4096);
  auto qid = tb.wait((*ctrl)->create_queue_pair(bogus, 64, *cq_mem, 64, std::nullopt));
  ASSERT_TRUE(qid.has_value()) << qid.status().to_string();  // creation just records it

  // First doorbell makes the controller fetch from the void -> fatal.
  Bytes db(4);
  store_pod(db, std::uint32_t{1});
  (void)tb.fabric().post_write(tb.fabric().cpu(0), (*ctrl)->sq_doorbell(*qid), std::move(db));
  tb.engine().run_for(1_ms);
  EXPECT_TRUE(tb.controller().is_fatal());
}

TEST(FaultInjection, UnreachableDataBufferCompletesWithTransferError) {
  Testbed tb(small_testbed(1));
  auto ctrl = tb.wait(driver::BareController::init(tb.cluster(), tb.nvme_endpoint(), {}));
  ASSERT_TRUE(ctrl.has_value());
  auto sq_mem = tb.cluster().alloc_dram(0, 64 * 64, 4096);
  auto cq_mem = tb.cluster().alloc_dram(0, 64 * 16, 4096);
  ASSERT_TRUE(tb.fabric()
                  .host_dram(0)
                  .write(*cq_mem, Bytes(64 * 16, std::byte{0}))
                  .is_ok());
  auto qid = tb.wait((*ctrl)->create_queue_pair(*sq_mem, 64, *cq_mem, 64, std::nullopt));
  ASSERT_TRUE(qid.has_value());

  nvme::QueuePair::Config qc;
  qc.qid = *qid;
  qc.sq_size = 64;
  qc.cq_size = 64;
  qc.sq_write_addr = *sq_mem;
  qc.cq_poll_addr = *cq_mem;
  qc.sq_doorbell_addr = (*ctrl)->sq_doorbell(*qid);
  qc.cq_doorbell_addr = (*ctrl)->cq_doorbell(*qid);
  qc.cpu = tb.fabric().cpu(0);
  nvme::QueuePair qp(tb.fabric(), qc);

  // Read whose PRP points into unmapped space: the data DMA fails, but the
  // command must still complete (with a transfer error), and the
  // controller must stay healthy.
  const std::uint64_t bogus = tb.config().dram_per_host + 0x200000;
  auto cid = qp.push(nvme::make_io_rw(false, 0, 1, 0, 8, bogus, 0));
  ASSERT_TRUE(cid.has_value());
  ASSERT_TRUE(qp.ring_sq_doorbell().is_ok());

  std::optional<nvme::CompletionEntry> cqe;
  const sim::Time deadline = tb.engine().now() + 1_s;
  while (!cqe && tb.engine().now() < deadline) {
    tb.engine().run_until(tb.engine().now() + 10_us);
    cqe = qp.poll();
  }
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->status(), nvme::kScDataTransferError);
  EXPECT_FALSE(tb.controller().is_fatal());
  EXPECT_TRUE(tb.controller().is_ready());
  EXPECT_EQ(tb.controller().stats().errors_completed, 1u);
}

// --- multi-device clusters ------------------------------------------------------------

TEST(MultiDevice, TwoDevicesTwoManagersOneClientHost) {
  TestbedConfig cfg = small_testbed(3);
  cfg.nvme_devices = 2;  // nvme0 in host 0, nvme1 in host 1
  Testbed tb(cfg);
  ASSERT_EQ(tb.device_count(), 2u);
  EXPECT_EQ(tb.device_host(0), 0u);
  EXPECT_EQ(tb.device_host(1), 1u);
  EXPECT_TRUE(tb.service().find_device("nvme0").has_value());
  EXPECT_TRUE(tb.service().find_device("nvme1").has_value());

  // One manager per device, on the device's own host.
  driver::Manager::Config m1cfg;
  auto m0 = tb.wait(driver::Manager::start(tb.service(), 0, tb.device_id(0), {}));
  ASSERT_TRUE(m0.has_value()) << m0.status().to_string();
  auto m1 = tb.wait(driver::Manager::start(tb.service(), 1, tb.device_id(1), m1cfg));
  ASSERT_TRUE(m1.has_value()) << m1.status().to_string();

  // Host 2 attaches to BOTH devices (distinct segment namespaces).
  driver::Client::Config c0cfg;
  c0cfg.segment_namespace = 0;
  auto c0 = tb.wait(driver::Client::attach(tb.service(), 2, tb.device_id(0), c0cfg));
  ASSERT_TRUE(c0.has_value()) << c0.status().to_string();
  driver::Client::Config c1cfg;
  c1cfg.segment_namespace = 1;
  auto c1 = tb.wait(driver::Client::attach(tb.service(), 2, tb.device_id(1), c1cfg));
  ASSERT_TRUE(c1.has_value()) << c1.status().to_string();

  // Distinct contents on each device at the same LBA.
  write_read_verify(tb, **c0, 2, 100, 4096, 0xAAAA);
  write_read_verify(tb, **c1, 2, 100, 4096, 0xBBBB);

  // The devices are truly independent: read device 0's LBA back and check
  // it was not clobbered by device 1's write.
  const std::uint64_t rbuf = alloc_pattern_buffer(tb, 2, 4096, 0);
  auto rd = do_io(tb, **c0, {block::Op::read, 100, 8, rbuf});
  ASSERT_TRUE(rd.has_value() && rd->status.is_ok());
  EXPECT_TRUE(buffer_matches(tb, 2, rbuf, 4096, 0xAAAA));

  // Concurrent verified jobs against both devices from the same host.
  workload::JobSpec spec;
  spec.pattern = workload::JobSpec::Pattern::randrw;
  spec.ops = 150;
  spec.queue_depth = 4;
  spec.verify = true;
  auto j0 = workload::run_job(tb.cluster(), **c0, 2, spec);
  spec.seed = 2;
  auto j1 = workload::run_job(tb.cluster(), **c1, 2, spec);
  auto r0 = tb.wait(std::move(j0), 120_s);
  auto r1 = tb.wait(std::move(j1), 120_s);
  ASSERT_TRUE(r0.has_value() && r1.has_value());
  EXPECT_EQ(r0->errors + r0->verify_failures, 0u);
  EXPECT_EQ(r1->errors + r1->verify_failures, 0u);
}

TEST(MultiDevice, SeparateExclusiveOwnership) {
  TestbedConfig cfg = small_testbed(2);
  cfg.nvme_devices = 2;
  Testbed tb(cfg);
  // Exclusive on device 0 does not block device 1.
  auto ex0 = tb.service().acquire(tb.device_id(0), smartio::AcquireMode::exclusive);
  ASSERT_TRUE(ex0.has_value());
  EXPECT_TRUE(tb.service().acquire(tb.device_id(1), smartio::AcquireMode::exclusive)
                  .has_value());
  EXPECT_FALSE(tb.service().acquire(tb.device_id(0), smartio::AcquireMode::shared)
                   .has_value());
}

}  // namespace
}  // namespace nvmeshare
