// Unit tests for the FIO-style workload generator and the testbed builder.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace nvmeshare::workload {
namespace {

using namespace testutil;

TEST(Testbed, BuildsRequestedTopology) {
  TestbedConfig cfg = small_testbed(4);
  cfg.local_switch_chips = 2;
  Testbed tb(cfg);
  EXPECT_EQ(tb.fabric().host_count(), 4u);
  // NVMe sits behind two extra chips: RC -> sw0 -> sw1 -> device.
  auto pc = tb.fabric().topology().path_cost(tb.fabric().host_rc(0),
                                             tb.fabric().endpoint_chip(tb.nvme_endpoint()));
  EXPECT_TRUE(pc.reachable);
  EXPECT_EQ(pc.hops, 3);
  // Every host has an NTB adapter.
  for (pcie::HostId h = 0; h < 4; ++h) {
    EXPECT_TRUE(tb.fabric().host_ntb(h).has_value());
  }
}

TEST(Testbed, SingleHostHasNoNtb) {
  Testbed tb(small_testbed(1));
  EXPECT_FALSE(tb.fabric().host_ntb(0).has_value());
}

struct JobFixture : ::testing::Test {
  JobFixture() : tb(small_testbed(2)) {
    auto stack = bring_up(tb, 0, 1);
    EXPECT_TRUE(stack.has_value()) << stack.status().to_string();
    manager = std::move(stack->manager);
    client = std::move(stack->client);
  }
  Testbed tb;
  std::unique_ptr<driver::Manager> manager;
  std::unique_ptr<driver::Client> client;
};

TEST_F(JobFixture, OpCountJobCompletesExactly) {
  JobSpec spec;
  spec.pattern = JobSpec::Pattern::randread;
  spec.ops = 200;
  spec.queue_depth = 1;
  auto result = tb.wait(run_job(tb.cluster(), *client, 1, spec), 120_s);
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_EQ(result->ops_completed, 200u);
  EXPECT_EQ(result->read_latency.count(), 200u);
  EXPECT_EQ(result->write_latency.count(), 0u);
  EXPECT_GT(result->elapsed, 0);
  EXPECT_GT(result->iops(), 0.0);
}

TEST_F(JobFixture, DurationJobStopsOnTime) {
  JobSpec spec;
  spec.pattern = JobSpec::Pattern::randwrite;
  spec.ops = 0;
  spec.duration = 5_ms;
  spec.queue_depth = 2;
  auto result = tb.wait(run_job(tb.cluster(), *client, 1, spec), 120_s);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->ops_completed, 10u);
  // Workers stop at the deadline; in-flight ops may finish slightly after.
  EXPECT_LT(result->elapsed, 6_ms);
}

TEST_F(JobFixture, MixedWorkloadSplitsLatencies) {
  JobSpec spec;
  spec.pattern = JobSpec::Pattern::randrw;
  spec.read_fraction = 0.5;
  spec.ops = 300;
  spec.queue_depth = 4;
  spec.seed = 3;
  auto result = tb.wait(run_job(tb.cluster(), *client, 1, spec), 120_s);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->read_latency.count() + result->write_latency.count(), 300u);
  EXPECT_GT(result->read_latency.count(), 60u);   // roughly half each
  EXPECT_GT(result->write_latency.count(), 60u);
}

TEST_F(JobFixture, VerifyCatchesNothingOnHealthyStack) {
  JobSpec spec;
  spec.pattern = JobSpec::Pattern::randrw;
  spec.ops = 200;
  spec.queue_depth = 2;
  spec.verify = true;
  spec.region_blocks = 8192;
  auto result = tb.wait(run_job(tb.cluster(), *client, 1, spec), 120_s);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->verify_failures, 0u);
  EXPECT_EQ(result->errors, 0u);
}

TEST_F(JobFixture, SequentialPatternSweepsRegion) {
  JobSpec spec;
  spec.pattern = JobSpec::Pattern::seqwrite;
  spec.ops = 64;
  spec.queue_depth = 1;
  spec.region_blocks = 64 * 8;  // exactly 64 4-KiB slots
  spec.verify = true;
  auto result = tb.wait(run_job(tb.cluster(), *client, 1, spec), 120_s);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->ops_completed, 64u);
  EXPECT_EQ(result->errors, 0u);
}

TEST_F(JobFixture, TrimWorkloadVerifiesZeroes) {
  // Seed the region with data, then interleave trims and reads with
  // verification: reads of trimmed ranges must come back zero.
  JobSpec fill;
  fill.pattern = JobSpec::Pattern::seqwrite;
  fill.ops = 64;
  fill.region_blocks = 64 * 8;
  fill.verify = true;
  auto filled = tb.wait(run_job(tb.cluster(), *client, 1, fill), 120_s);
  ASSERT_TRUE(filled.has_value());
  ASSERT_EQ(filled->errors, 0u);

  JobSpec trim;
  trim.pattern = JobSpec::Pattern::randtrim;
  trim.ops = 40;
  trim.region_blocks = 64 * 8;
  trim.verify = true;
  trim.seed = 5;
  auto trimmed = tb.wait(run_job(tb.cluster(), *client, 1, trim), 120_s);
  ASSERT_TRUE(trimmed.has_value()) << trimmed.status().to_string();
  EXPECT_EQ(trimmed->errors, 0u);
  EXPECT_EQ(trimmed->write_latency.count(), 40u);  // trims are write-class

  JobSpec readback;
  readback.pattern = JobSpec::Pattern::seqread;
  readback.ops = 64;
  readback.region_blocks = 64 * 8;
  readback.verify = true;  // knows nothing was written by *this* job: no checks fire
  auto read = tb.wait(run_job(tb.cluster(), *client, 1, readback), 120_s);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->errors, 0u);
  EXPECT_EQ(read->verify_failures, 0u);
}

TEST_F(JobFixture, MixedTrimAndWriteRoundTrips) {
  // One job: writes then trims then reads over the same region with the
  // shared expected-content model (QD=1 so the model is exact).
  JobSpec spec;
  spec.pattern = JobSpec::Pattern::randtrim;
  spec.ops = 30;
  spec.queue_depth = 1;
  spec.verify = true;
  spec.region_blocks = 1024;
  auto result = tb.wait(run_job(tb.cluster(), *client, 1, spec), 120_s);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->errors, 0u);
  EXPECT_EQ(result->verify_failures, 0u);
}

TEST_F(JobFixture, BadSpecsRejected) {
  JobSpec spec;
  spec.block_bytes = 0;
  auto r1 = tb.wait(run_job(tb.cluster(), *client, 1, spec), 10_s);
  EXPECT_EQ(r1.error_code(), Errc::invalid_argument);

  spec = JobSpec{};
  spec.ops = 0;
  spec.duration = 0;
  auto r2 = tb.wait(run_job(tb.cluster(), *client, 1, spec), 10_s);
  EXPECT_EQ(r2.error_code(), Errc::invalid_argument);

  spec = JobSpec{};
  spec.block_bytes = 513;  // not a multiple of the block size
  auto r3 = tb.wait(run_job(tb.cluster(), *client, 1, spec), 10_s);
  EXPECT_EQ(r3.error_code(), Errc::invalid_argument);
}

TEST_F(JobFixture, DeterministicAcrossRuns) {
  auto run_once = [&](std::uint64_t seed) {
    JobSpec spec;
    spec.pattern = JobSpec::Pattern::randread;
    spec.ops = 100;
    spec.seed = seed;
    auto result = tb.wait(run_job(tb.cluster(), *client, 1, spec), 120_s);
    EXPECT_TRUE(result.has_value());
    return result->total_latency.mean();
  };
  // Same testbed, sequential runs: different (device state differs), but a
  // fresh identical testbed must reproduce numbers exactly.
  const double first = run_once(5);
  EXPECT_GT(first, 0.0);

  Testbed tb2(small_testbed(2));
  auto stack2 = bring_up(tb2, 0, 1);
  ASSERT_TRUE(stack2.has_value());
  JobSpec spec;
  spec.pattern = JobSpec::Pattern::randread;
  spec.ops = 100;
  spec.seed = 5;
  auto again = tb2.wait(run_job(tb2.cluster(), *stack2->client, 1, spec), 120_s);
  ASSERT_TRUE(again.has_value());
  EXPECT_DOUBLE_EQ(again->total_latency.mean(), first);
}

}  // namespace
}  // namespace nvmeshare::workload
